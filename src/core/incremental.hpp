// Incremental (streaming) intent classification.
//
// The batch Pipeline recomputes everything from a full tuple set; a
// consumer of live BGP update feeds wants to *ingest* entries as they
// arrive and ask for labels cheaply.  IncrementalClassifier keeps the
// per-community path accumulators across calls and reclassifies only the
// owner ASes whose evidence changed since the last result() call —
// including alphas whose never-on-path exclusion may have been lifted by a
// newly observed AS path.
//
// Ingest interns every AS path into a bgp::PathTable: a path repeated by
// later updates (the common case in a live feed) is hashed and scanned for
// its distinct ASNs only the first time, and on-path membership — with the
// org-sibling expansion — is memoized per (path, alpha), so a route
// carrying many betas of one alpha resolves it once.  The interning is an
// internal representation only: exported State and the serve snapshot
// format still speak sorted path hashes and are byte-identical to the
// pre-interning implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bgp/path_table.hpp"
#include "core/classifier.hpp"
#include "core/observations.hpp"
#include "mrt/decode.hpp"

namespace bgpintent::mrt {
class ByteSource;
}

namespace bgpintent::core {

class StateView;

class IncrementalClassifier {
 public:
  explicit IncrementalClassifier(ClassifierConfig config = {},
                                 ObservationConfig observation = {})
      : config_(config), observation_(observation) {}

  [[nodiscard]] const ClassifierConfig& classifier_config() const noexcept {
    return config_;
  }
  [[nodiscard]] const ObservationConfig& observation_config() const noexcept {
    return observation_;
  }

  /// Optional sibling context; must outlive the classifier.  Swapping the
  /// map invalidates the memoized per-(path, alpha) on-path answers, so
  /// set it before ingesting (changing it mid-stream is legal but drops
  /// the memo).
  void set_org_map(const topo::OrgMap* orgs) noexcept {
    if (orgs != orgs_) on_path_memo_.clear();
    orgs_ = orgs;
  }

  /// Ingests one RIB entry / update announcement.
  void ingest(const bgp::RibEntry& entry);
  void ingest(std::span<const bgp::RibEntry> entries);

  /// Streams one MRT source straight into the accumulators: every decoded
  /// row is ingested off the shared scratch without materializing a
  /// RibEntry batch, and the decode outcome is folded into the decode
  /// counters (record_decode_outcome) — including on throw, so rows
  /// ingested before a budget trip keep their provenance.  When `report`
  /// is non-null it receives the source's own DecodeReport (also on
  /// throw, like mrt::decode_rib_stream).
  void ingest_mrt(const mrt::ByteSource& source,
                  const mrt::DecodeOptions& options = {},
                  mrt::DecodeReport* report = nullptr);

  /// Current label of a community; reclassifies the owner lazily.
  [[nodiscard]] Intent label_of(Community community);

  /// Reclassifies every dirty alpha and returns the global counters.
  struct Totals {
    std::size_t communities = 0;
    std::size_t information = 0;
    std::size_t action = 0;
    std::size_t unclassified = 0;
  };
  [[nodiscard]] Totals totals();

  /// Returns the cached label of every known (community, intent) pair —
  /// including kUnclassified for betas with evidence but no settled label
  /// — so a caller can build a complete lookup table whose misses exactly
  /// mean "classifier would say unclassified".  Does NOT reclassify:
  /// dirty alphas report their stale cached labels, and export_state()
  /// afterwards is byte-identical to before.  Feeds the serve tier's
  /// initial RCU snapshot; pair with settle_dirty to fold in the rest.
  [[nodiscard]] std::vector<std::pair<Community, Intent>> label_snapshot()
      const;

  /// Reclassifies only the currently dirty alphas and appends the settled
  /// labels of *their* betas to `out` (same completeness contract as
  /// label_snapshot, restricted to dirty alphas).  The serve tier applies
  /// these as a delta onto a copy-on-write label epoch after INGEST.
  void settle_dirty(std::vector<std::pair<Community, Intent>>& out);

  [[nodiscard]] std::size_t entries_ingested() const noexcept {
    return entries_ingested_;
  }
  [[nodiscard]] std::size_t dirty_alpha_count() const noexcept {
    return dirty_.size();
  }

  /// Accumulates the decode outcome of one ingest batch (records that
  /// decoded cleanly vs. records skipped by a tolerant MRT decode).  The
  /// classifier itself never decodes MRT; callers that do (serve, CLI)
  /// fold their DecodeReport counts in here so the counters survive in
  /// snapshots alongside the evidence they describe.
  void record_decode_outcome(std::uint64_t records_ok,
                             std::uint64_t records_skipped) noexcept {
    decode_records_ok_ += records_ok;
    decode_records_skipped_ += records_skipped;
  }
  [[nodiscard]] std::uint64_t decode_records_ok() const noexcept {
    return decode_records_ok_;
  }
  [[nodiscard]] std::uint64_t decode_records_skipped() const noexcept {
    return decode_records_skipped_;
  }

  /// Flattened view of the complete mutable state — every accumulator, the
  /// cached labels, the dirty set, and the ingest counter.  All vectors are
  /// sorted, so two classifiers with equal evidence export equal states
  /// regardless of ingest order; serve/snapshot.* persists exactly this.
  struct State {
    struct BetaEvidence {
      std::uint16_t beta = 0;
      std::vector<std::uint64_t> on_paths;   ///< sorted path hashes
      std::vector<std::uint64_t> off_paths;  ///< sorted path hashes
      friend bool operator==(const BetaEvidence&,
                             const BetaEvidence&) = default;
    };
    struct Alpha {
      std::uint16_t alpha = 0;
      std::vector<BetaEvidence> betas;  ///< sorted by beta
      /// Cached labels from the last reclassification, sorted by beta;
      /// betas without a cached label are simply absent.
      std::vector<std::pair<std::uint16_t, Intent>> labels;
      friend bool operator==(const Alpha&, const Alpha&) = default;
    };
    std::vector<Alpha> alphas;            ///< sorted by alpha
    std::vector<bgp::Asn> asns_on_paths;  ///< sorted
    std::vector<std::uint16_t> dirty;     ///< sorted
    std::size_t entries_ingested = 0;
    std::uint64_t decode_records_ok = 0;
    std::uint64_t decode_records_skipped = 0;
    friend bool operator==(const State&, const State&) = default;
  };

  /// Exports the current state without reclassifying (dirty stays dirty).
  [[nodiscard]] State export_state() const;

  /// Replaces all accumulated evidence with `state`.  Configs and the org
  /// map are not part of the state — construct with the right configs and
  /// re-attach the org map before restoring.
  void restore_state(const State& state);

  /// restore_state plus an imported interned-path table (PathIds
  /// preserved).  The v3 snapshot decoder uses this so a restored
  /// classifier skips re-interning the live feed's repeat paths; with an
  /// empty table behaviour is identical to restore_state(state) alone.
  void restore_state(const State& state, bgp::PathTable paths);

  // --- borrowed columnar state (snapshot v3, core/state_view.hpp) ---
  //
  // restore_view() replaces all owned evidence with a borrowed view: the
  // read-side API (label_of / totals / label_snapshot / settle_dirty /
  // export_state) answers straight off the view's columns, with lazily
  // reclassified alphas kept in a small per-alpha label overlay.  The
  // first ingest() copies the view (plus overlay) into owned state and
  // drops the borrow — copy-on-first-INGEST — after which behaviour is
  // indistinguishable from restore_state() of the same evidence.

  /// Borrow `view` as the complete classifier state.  Clears all owned
  /// evidence; the view's dirty column seeds the dirty set.  Configs and
  /// the org map are (as with restore_state) the caller's job and must
  /// match the ones the snapshot was written under.
  void restore_view(std::shared_ptr<const StateView> view);

  /// True while state is borrowed from a view (no ingest has detached it).
  [[nodiscard]] bool is_borrowed() const noexcept { return view_ != nullptr; }

  /// The borrowed view (shared so callers can pin the backing mapping
  /// beyond a later detach), or nullptr when state is owned.
  [[nodiscard]] std::shared_ptr<const StateView> view() const noexcept {
    return view_;
  }

  /// The interned-path storage decomposed into flat columns (the v3
  /// snapshot writer persists exactly this).  When borrowed, the arena
  /// spans alias the view's backing bytes; otherwise they alias the live
  /// owned table, valid until the next ingest.
  [[nodiscard]] bgp::PathTable::ExportedColumns path_columns() const;

 private:
  struct CommunityAccumulator {
    std::unordered_set<std::uint64_t> on_paths;
    std::unordered_set<std::uint64_t> off_paths;
  };
  struct AlphaState {
    // beta -> accumulator (kept sorted only at classification time)
    std::unordered_map<std::uint16_t, CommunityAccumulator> betas;
    std::unordered_map<std::uint16_t, Intent> labels;
  };

  /// True when `alpha` (or a sibling) has been seen in any path.
  [[nodiscard]] bool alpha_on_any_path(std::uint16_t alpha) const;

  void reclassify(std::uint16_t alpha, AlphaState& state);
  void reclassify_dirty();

  /// Copies the borrowed view (plus the label overlay) into owned state
  /// and drops the borrow.  Called by the first ingest after
  /// restore_view.
  void detach();
  /// Reclassifies one borrowed alpha from column begin-diffs into the
  /// overlay (counts only — no hash sets are materialized).
  void reclassify_view(std::uint16_t alpha);
  /// Cached label of a borrowed (alpha, beta): overlay first, then the
  /// view's label columns; absent means kUnclassified.
  [[nodiscard]] Intent view_label(std::size_t alpha_slot, std::uint16_t alpha,
                                  std::uint16_t beta) const;

  ClassifierConfig config_;
  ObservationConfig observation_;
  const topo::OrgMap* orgs_ = nullptr;

  std::unordered_map<std::uint16_t, AlphaState> alphas_;
  // Borrowed state: when view_ is set, alphas_/asns_on_paths_/paths_ are
  // empty and every read answers from the view's columns.  view_labels_
  // overlays the view's (immutable) cached-label columns with the labels
  // of alphas reclassified since the snapshot was taken; a present entry
  // replaces the alpha's whole label set (possibly with an empty vector —
  // "settled, no labels"), each vector sorted by beta.
  std::shared_ptr<const StateView> view_;
  std::unordered_map<std::uint16_t, std::vector<std::pair<std::uint16_t, Intent>>>
      view_labels_;
  // Interned unique paths + per-(path, alpha) on-path memo.  Not part of
  // the exported State: the table regrows from the live feed, and the memo
  // is a pure function of path content, the org map, and the config.
  bgp::PathTable paths_;
  std::unordered_map<std::uint64_t, bool> on_path_memo_;
  std::unordered_set<bgp::Asn> asns_on_paths_;
  std::unordered_set<std::uint16_t> dirty_;
  std::size_t entries_ingested_ = 0;
  std::uint64_t decode_records_ok_ = 0;
  std::uint64_t decode_records_skipped_ = 0;
};

}  // namespace bgpintent::core
