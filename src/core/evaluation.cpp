#include "core/evaluation.hpp"

namespace bgpintent::core {

Evaluation evaluate(const ObservationIndex& observations,
                    const InferenceResult& result,
                    const dict::DictionaryStore& truth) {
  Evaluation eval;
  for (const CommunityStats& stats : observations.all()) {
    const auto expected = truth.intent(stats.community);
    if (!expected) continue;
    ++eval.labeled_observed;
    const Intent inferred = result.label_of(stats.community);
    if (inferred == Intent::kUnclassified) {
      ++eval.unclassified;
      continue;
    }
    ++eval.classified;
    if (inferred == *expected) {
      ++eval.correct;
    } else if (*expected == Intent::kInformation) {
      ++eval.info_as_action;
    } else {
      ++eval.action_as_info;
    }
  }
  return eval;
}

std::vector<BaselineCluster> baseline_clusters(
    const ObservationIndex& observations, const dict::DictionaryStore& truth) {
  std::vector<BaselineCluster> clusters;
  for (const auto& [alpha, dictionary] : truth.all()) {
    for (const dict::DictEntry& entry : dictionary.entries()) {
      BaselineCluster cluster;
      cluster.pattern = entry.pattern.to_string();
      cluster.truth = entry.intent();
      cluster.pure_on = true;
      cluster.pure_off = true;
      double ratio_sum = 0.0;
      double cp_sum = 0.0;
      std::size_t pooled_on = 0;
      std::size_t pooled_off = 0;
      for (const std::uint16_t beta : observations.observed_betas(alpha)) {
        const Community community(alpha, beta);
        if (!entry.pattern.matches(community)) continue;
        // First matching entry wins in dictionary lookups; skip members an
        // earlier pattern already owns so clusters stay disjoint.
        if (dictionary.lookup(community) != &entry) continue;
        const CommunityStats* stats = observations.find(community);
        ++cluster.member_count;
        ratio_sum += stats->on_off_ratio();
        cp_sum += stats->customer_peer_ratio();
        pooled_on += stats->on_path_paths;
        pooled_off += stats->off_path_paths;
        if (!stats->pure_on()) cluster.pure_on = false;
        if (!stats->pure_off()) cluster.pure_off = false;
      }
      if (cluster.member_count == 0) continue;
      cluster.mean_on_off_ratio =
          ratio_sum / static_cast<double>(cluster.member_count);
      cluster.pooled_on_off_ratio =
          static_cast<double>(pooled_on) /
          static_cast<double>(pooled_off == 0 ? 1 : pooled_off);
      cluster.mean_customer_peer_ratio =
          cp_sum / static_cast<double>(cluster.member_count);
      clusters.push_back(std::move(cluster));
    }
  }
  return clusters;
}

std::vector<ThresholdSweepPoint> sweep_ratio_threshold(
    const std::vector<BaselineCluster>& clusters,
    const std::vector<double>& thresholds, ClusterFeature feature) {
  std::vector<ThresholdSweepPoint> points;
  for (const double threshold : thresholds) {
    std::size_t total = 0;
    std::size_t correct = 0;
    for (const BaselineCluster& cluster : clusters) {
      if (!cluster.mixed()) continue;  // pure clusters are trivially right
      ++total;
      double value = 0.0;
      switch (feature) {
        case ClusterFeature::kMeanOnOff:
          value = cluster.mean_on_off_ratio;
          break;
        case ClusterFeature::kPooledOnOff:
          value = cluster.pooled_on_off_ratio;
          break;
        case ClusterFeature::kCustomerPeer:
          value = cluster.mean_customer_peer_ratio;
          break;
      }
      // on:off — high ratio means information; customer:peer — low ratio
      // means information (§5.1).
      const Intent predicted =
          feature == ClusterFeature::kCustomerPeer
              ? (value < threshold ? Intent::kInformation : Intent::kAction)
              : (value >= threshold ? Intent::kInformation : Intent::kAction);
      if (predicted == cluster.truth) ++correct;
    }
    points.push_back(ThresholdSweepPoint{
        threshold, total == 0 ? 0.0
                              : static_cast<double>(correct) /
                                    static_cast<double>(total)});
  }
  return points;
}

}  // namespace bgpintent::core
