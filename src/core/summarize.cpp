#include "core/summarize.hpp"

#include <algorithm>
#include <ostream>

namespace bgpintent::core {

std::vector<InferredEntry> summarize(const ObservationIndex& observations,
                                     const InferenceResult& inference,
                                     const SummaryConfig& config) {
  std::vector<InferredEntry> entries;
  for (const ClusterInference& cluster : inference.clusters) {
    if (cluster.intent == Intent::kUnclassified) continue;
    std::size_t total_observations = 0;
    for (const std::uint16_t beta : cluster.cluster.betas) {
      const CommunityStats* stats =
          observations.find(Community(cluster.cluster.alpha, beta));
      if (stats != nullptr) total_observations += stats->total_paths();
    }
    if (total_observations < config.min_observations) continue;

    const std::uint16_t lo = cluster.cluster.lo();
    const std::uint16_t hi = cluster.cluster.hi();
    const std::string pattern_text =
        cluster.cluster.size() >= config.min_range_size && lo != hi
            ? std::to_string(lo) + "-" + std::to_string(hi)
            : std::to_string(lo);
    InferredEntry entry{
        dict::CommunityPattern::from_parts(
            cluster.cluster.alpha, dict::BetaPattern::compile(pattern_text)),
        cluster.intent, cluster.cluster.size(), total_observations,
        cluster.pooled_ratio};
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const InferredEntry& a, const InferredEntry& b) {
              if (a.pattern.alpha() != b.pattern.alpha())
                return a.pattern.alpha() < b.pattern.alpha();
              return a.pattern.beta_pattern().bounds() <
                     b.pattern.beta_pattern().bounds();
            });
  return entries;
}

dict::DictionaryStore to_dictionary(const std::vector<InferredEntry>& entries) {
  dict::DictionaryStore store;
  for (const InferredEntry& entry : entries) {
    store.dictionary_for(entry.pattern.alpha())
        .add(entry.pattern,
             entry.intent == Intent::kAction ? dict::Category::kOtherAction
                                             : dict::Category::kOtherInfo,
             "inferred");
  }
  return store;
}

void write_summary(std::ostream& out,
                   const std::vector<InferredEntry>& entries) {
  out << "# inferred community dictionary: alpha|pattern|category|description\n";
  out << "# description carries members/observations/ratio provenance\n";
  for (const InferredEntry& entry : entries) {
    out << entry.pattern.alpha() << '|' << entry.pattern.beta_pattern().text()
        << '|'
        << dict::to_string(entry.intent == Intent::kAction
                               ? dict::Category::kOtherAction
                               : dict::Category::kOtherInfo)
        << '|' << "members=" << entry.member_count
        << " observations=" << entry.observations << " ratio=" << entry.ratio
        << '\n';
  }
}

DictionaryDiff diff_dictionaries(const ObservationIndex& observations,
                                 const dict::DictionaryStore& inferred,
                                 const dict::DictionaryStore& reference) {
  DictionaryDiff diff;
  for (const CommunityStats& stats : observations.all()) {
    const auto ours = inferred.intent(stats.community);
    const auto theirs = reference.intent(stats.community);
    if (ours && theirs) {
      ++diff.both_cover;
      if (*ours == *theirs) ++diff.agree;
    } else if (ours) {
      ++diff.inferred_only;
    } else if (theirs) {
      ++diff.reference_only;
    }
  }
  return diff;
}

}  // namespace bgpintent::core
