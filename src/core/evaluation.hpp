// Evaluation of inference results against ground-truth dictionaries, plus
// the dictionary-defined "baseline clusters" of §5.1 used by Figs. 6 and 7.
#pragma once

#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "dict/dictionary.hpp"

namespace bgpintent::core {

/// Scorecard over the communities covered by a ground-truth dictionary.
struct Evaluation {
  std::size_t labeled_observed = 0;   ///< observed & dictionary-covered
  std::size_t classified = 0;         ///< ... of those, given a label
  std::size_t correct = 0;
  std::size_t info_as_action = 0;     ///< misclassifications by direction
  std::size_t action_as_info = 0;
  std::size_t unclassified = 0;       ///< covered but excluded

  /// Accuracy over classified communities (the paper's 96.5% metric).
  [[nodiscard]] double accuracy() const noexcept {
    return classified == 0
               ? 0.0
               : static_cast<double>(correct) / static_cast<double>(classified);
  }
  /// Fraction of labeled observed communities that received a label.
  [[nodiscard]] double coverage() const noexcept {
    return labeled_observed == 0 ? 0.0
                                 : static_cast<double>(classified) /
                                       static_cast<double>(labeled_observed);
  }
};

/// Scores `result` against `truth` over the communities in `observations`.
[[nodiscard]] Evaluation evaluate(const ObservationIndex& observations,
                                  const InferenceResult& result,
                                  const dict::DictionaryStore& truth);

/// A baseline cluster (§5.1): the observed communities covered by one
/// ground-truth dictionary pattern, with aggregated path statistics.
struct BaselineCluster {
  std::string pattern;     ///< "alpha:pattern-text"
  Intent truth = Intent::kUnclassified;
  std::size_t member_count = 0;
  double mean_on_off_ratio = 0.0;
  double pooled_on_off_ratio = 0.0;  ///< Σon : Σoff across members
  double mean_customer_peer_ratio = 0.0;
  bool pure_on = false;
  bool pure_off = false;

  [[nodiscard]] bool mixed() const noexcept { return !pure_on && !pure_off; }
};

/// Builds baseline clusters from every dictionary entry that covers at
/// least one observed community.
[[nodiscard]] std::vector<BaselineCluster> baseline_clusters(
    const ObservationIndex& observations, const dict::DictionaryStore& truth);

/// Cluster feature used by threshold sweeps.
enum class ClusterFeature : std::uint8_t {
  kMeanOnOff,    ///< mean of member on:off ratios (paper's description)
  kPooledOnOff,  ///< Σon : Σoff (scale-robust; classifier default)
  kCustomerPeer, ///< mean customer:peer ratio (Fig. 7; info below threshold)
};

/// Accuracy of a single-threshold rule over mixed baseline clusters:
/// on:off features classify information at/above the threshold,
/// customer:peer below it.  Reproduces the "160:1 yields 98%" (Fig. 6)
/// and "5:1 yields 80%" (Fig. 7) statements.
struct ThresholdSweepPoint {
  double threshold = 0.0;
  double accuracy = 0.0;
};
[[nodiscard]] std::vector<ThresholdSweepPoint> sweep_ratio_threshold(
    const std::vector<BaselineCluster>& clusters,
    const std::vector<double>& thresholds,
    ClusterFeature feature = ClusterFeature::kPooledOnOff);

}  // namespace bgpintent::core
