#include "core/clustering.hpp"

namespace bgpintent::core {

std::vector<Cluster> gap_cluster(std::uint16_t alpha,
                                 std::span<const std::uint16_t> betas,
                                 std::uint32_t min_gap) {
  std::vector<Cluster> clusters;
  Cluster current;
  current.alpha = alpha;
  for (const std::uint16_t beta : betas) {
    if (!current.betas.empty() &&
        static_cast<std::uint32_t>(beta) -
                static_cast<std::uint32_t>(current.betas.back()) >
            min_gap) {
      clusters.push_back(std::move(current));
      current = Cluster{};
      current.alpha = alpha;
    }
    current.betas.push_back(beta);
  }
  if (!current.betas.empty()) clusters.push_back(std::move(current));
  return clusters;
}

}  // namespace bgpintent::core
