// Borrowed columnar classifier state (snapshot format v3).
//
// IncrementalClassifier::State is the *owned* flattened form of the
// classifier: vectors of vectors, rebuilt into hash maps on restore.  A
// StateView is the same information as flat primitive columns borrowed
// from somewhere else — in practice an mmap'd v3 snapshot
// (serve::MappedSnapshot) — plus a keep-alive handle that pins the
// backing bytes.  The classifier can serve LABEL/TOTALS directly off a
// view with zero decode work and detaches (copies into owned state) only
// on the first INGEST; see IncrementalClassifier::restore_view.
//
// Column model (all index columns sorted ascending, validated by the
// producer before a view is handed out):
//
//   alpha_ids[a]                         owner AS of alpha slot a
//   alpha_beta_begin[a]..[a+1]           slot range in the beta columns
//   alpha_label_begin[a]..[a+1]          slot range in the label columns
//   beta_ids[b]                          beta value of beta slot b
//   beta_on_begin[b]..[b+1]              range in on_path_hashes
//   beta_off_begin[b]..[b+1]             range in off_path_hashes
//   label_betas[l] / label_intents[l]    cached labels per alpha
//   asns_on_paths / dirty                the classifier's two sets
//   serve_wires / serve_intents          label_snapshot() pre-flattened:
//                                        (alpha<<16|beta) sorted, one slot
//                                        per evidence beta, kUnclassified
//                                        where no label is cached
//   paths                                PathTable arenas (ids preserved)
//
// The `begin` columns have one more entry than their id column
// (begin[0] == 0, back() == total), so per-slot counts are begin-diffs
// and no count column is stored.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "bgp/path_table.hpp"
#include "core/incremental.hpp"

namespace bgpintent::core {

/// All columns of one snapshot, as borrowed spans.  Plain data; copyable.
struct StateColumns {
  std::uint64_t entries_ingested = 0;
  std::uint64_t decode_records_ok = 0;
  std::uint64_t decode_records_skipped = 0;

  std::span<const bgp::Asn> asns_on_paths;
  std::span<const std::uint16_t> dirty;

  std::span<const std::uint16_t> alpha_ids;
  std::span<const std::uint32_t> alpha_beta_begin;   ///< alpha_ids.size()+1
  std::span<const std::uint32_t> alpha_label_begin;  ///< alpha_ids.size()+1

  std::span<const std::uint16_t> beta_ids;
  std::span<const std::uint64_t> beta_on_begin;   ///< beta_ids.size()+1
  std::span<const std::uint64_t> beta_off_begin;  ///< beta_ids.size()+1
  std::span<const std::uint64_t> on_path_hashes;
  std::span<const std::uint64_t> off_path_hashes;

  std::span<const std::uint16_t> label_betas;
  std::span<const Intent> label_intents;

  std::span<const std::uint32_t> serve_wires;
  std::span<const Intent> serve_intents;

  bgp::PathTable::ImportColumns paths;
};

/// Columns plus the ownership handle that keeps them mapped.  Held by
/// shared_ptr everywhere (classifier, serve epochs) so the mapping lives
/// exactly as long as any reader of it.
class StateView {
 public:
  StateView(StateColumns columns, std::shared_ptr<const void> keep_alive)
      : columns_(columns), keep_alive_(std::move(keep_alive)) {}

  [[nodiscard]] const StateColumns& columns() const noexcept {
    return columns_;
  }

  /// Slot of `alpha` in the alpha columns (binary search); nullopt when
  /// the snapshot holds no evidence for it.
  [[nodiscard]] std::optional<std::size_t> find_alpha(
      std::uint16_t alpha) const noexcept;

  /// Cached label of (alpha slot, beta); nullopt when no label is cached
  /// (the caller maps that to kUnclassified, like the owned labels map).
  [[nodiscard]] std::optional<Intent> cached_label(
      std::size_t alpha_slot, std::uint16_t beta) const noexcept;

  /// Rebuilds the owned State this view was written from.  Sorted-vector
  /// invariants hold by construction (the columns are stored sorted), so
  /// the result compares equal to the exporting classifier's
  /// export_state().
  [[nodiscard]] IncrementalClassifier::State materialize() const;

  /// Rebuilds an owned PathTable from the path columns; PathIds preserved.
  [[nodiscard]] bgp::PathTable materialize_paths() const;

 private:
  StateColumns columns_;
  std::shared_ptr<const void> keep_alive_;
};

}  // namespace bgpintent::core
