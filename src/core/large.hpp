// Coarse intent inference for LARGE BGP communities (RFC 8092).
//
// The paper restricts its method to regular communities "owing to their
// prevalence" and leaves the 11,524 observed large communities for future
// work.  This module is that extension: the identical on-path:off-path
// machinery applied to alpha:beta:gamma values, clustering each owner's
// *beta* (function) values and pooling observations across gamma
// (argument) — operators use beta to select a function and gamma for its
// parameter, so the function selector is the analogue of the regular
// community's contiguous value blocks.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/route.hpp"
#include "dict/intent.hpp"

namespace bgpintent::core {

using dict::Intent;

/// Per-(alpha, beta) statistics pooled over gamma.
struct LargeFunctionStats {
  std::uint32_t alpha = 0;
  std::uint32_t beta = 0;
  std::size_t gamma_count = 0;      ///< distinct gamma values observed
  std::size_t on_path_paths = 0;    ///< unique paths, pooled over gamma
  std::size_t off_path_paths = 0;

  [[nodiscard]] bool pure_on() const noexcept { return off_path_paths == 0; }
  [[nodiscard]] bool pure_off() const noexcept { return on_path_paths == 0; }
  [[nodiscard]] double ratio() const noexcept {
    return static_cast<double>(on_path_paths) /
           static_cast<double>(off_path_paths == 0 ? 1 : off_path_paths);
  }
};

struct LargeClassifierConfig {
  /// Gap parameter over beta (function) values.
  std::uint32_t min_gap = 140;
  double ratio_threshold = 160.0;
};

struct LargeInferenceResult {
  /// Intent per (alpha, beta) function; every observed gamma inherits it.
  std::unordered_map<std::uint64_t, Intent> function_labels;
  std::size_t information_count = 0;  ///< distinct (alpha,beta,gamma) values
  std::size_t action_count = 0;
  std::size_t excluded_never_on_path = 0;

  [[nodiscard]] Intent label_of(const bgp::LargeCommunity& c) const noexcept;
};

class LargeObservationIndex {
 public:
  [[nodiscard]] static LargeObservationIndex from_entries(
      std::span<const bgp::RibEntry> entries);

  [[nodiscard]] const std::vector<LargeFunctionStats>& all() const noexcept {
    return stats_;
  }
  [[nodiscard]] const LargeFunctionStats* find(std::uint32_t alpha,
                                               std::uint32_t beta) const;
  /// Distinct observed beta values of `alpha`, ascending.
  [[nodiscard]] std::vector<std::uint32_t> observed_betas(
      std::uint32_t alpha) const;
  [[nodiscard]] std::vector<std::uint32_t> alphas() const;
  [[nodiscard]] bool alpha_on_any_path(std::uint32_t alpha) const;
  [[nodiscard]] std::size_t value_count() const noexcept { return values_; }

 private:
  std::vector<LargeFunctionStats> stats_;  // sorted by (alpha, beta)
  std::unordered_set<bgp::Asn> asns_on_paths_;
  std::size_t values_ = 0;  // distinct (alpha, beta, gamma)
};

/// Gap-clusters the beta values of each alpha and labels the clusters by
/// their pooled on:off ratio, with the same exclusions as the regular
/// classifier (private-range and never-on-path alphas).
[[nodiscard]] LargeInferenceResult classify_large(
    const LargeObservationIndex& observations,
    const LargeClassifierConfig& config = {});

}  // namespace bgpintent::core
