#include "core/incremental.hpp"

#include <algorithm>

#include "bgp/asn.hpp"
#include "core/labeling.hpp"
#include "mrt/mrt_file.hpp"

namespace bgpintent::core {

void IncrementalClassifier::ingest(const bgp::RibEntry& entry) {
  ++entries_ingested_;
  const std::size_t paths_before = paths_.size();
  const bgp::PathId path_id = paths_.intern(entry.route.path);
  const std::uint64_t path_hash = paths_.hash(path_id);

  // New ASNs on paths can lift the never-on-path exclusion of the alphas
  // equal to them (and, with sibling matching, their org siblings).  A
  // re-interned path cannot introduce new ASNs, so the scan is skipped
  // entirely for the repeat announcements that dominate a live feed.
  if (paths_.size() > paths_before) {
    for (const bgp::Asn asn : paths_.unique_asns(path_id)) {
      if (!asns_on_paths_.insert(asn).second) continue;
      const auto mark_dirty = [this](bgp::Asn candidate) {
        if (candidate <= 0xffff &&
            alphas_.contains(static_cast<std::uint16_t>(candidate)))
          dirty_.insert(static_cast<std::uint16_t>(candidate));
      };
      mark_dirty(asn);
      if (observation_.sibling_aware && orgs_ != nullptr)
        for (const bgp::Asn sibling : orgs_->siblings(asn)) mark_dirty(sibling);
    }
  }

  for (const Community community : entry.route.communities) {
    const std::uint16_t alpha = community.alpha();
    AlphaState& state = alphas_[alpha];
    CommunityAccumulator& acc = state.betas[community.beta()];
    const std::uint64_t memo_key =
        static_cast<std::uint64_t>(path_id) << 16 | alpha;
    const auto [memo, fresh] = on_path_memo_.try_emplace(memo_key, false);
    if (fresh) {
      bool on = paths_.contains(path_id, alpha);
      if (!on && observation_.sibling_aware && orgs_ != nullptr)
        for (const bgp::Asn sibling : orgs_->siblings(alpha))
          if (sibling != alpha && paths_.contains(path_id, sibling)) on = true;
      memo->second = on;
    }
    const bool changed = memo->second
                             ? acc.on_paths.insert(path_hash).second
                             : acc.off_paths.insert(path_hash).second;
    if (changed) dirty_.insert(alpha);
  }
}

void IncrementalClassifier::ingest(std::span<const bgp::RibEntry> entries) {
  for (const bgp::RibEntry& entry : entries) ingest(entry);
}

void IncrementalClassifier::ingest_mrt(const mrt::ByteSource& source,
                                       const mrt::DecodeOptions& options,
                                       mrt::DecodeReport* report) {
  class Sink final : public mrt::EntrySink {
   public:
    explicit Sink(IncrementalClassifier& self) noexcept : self_(&self) {}
    void on_entry(bgp::RibEntry& entry) override { self_->ingest(entry); }

   private:
    IncrementalClassifier* self_;
  };
  Sink sink(*this);
  mrt::DecodeReport local;
  try {
    mrt::decode_rib_stream(source, sink, options, &local);
  } catch (...) {
    record_decode_outcome(local.records_ok, local.records_skipped);
    if (report) *report = std::move(local);
    throw;
  }
  record_decode_outcome(local.records_ok, local.records_skipped);
  if (report) *report = std::move(local);
}

bool IncrementalClassifier::alpha_on_any_path(std::uint16_t alpha) const {
  if (asns_on_paths_.contains(alpha)) return true;
  if (!observation_.sibling_aware || orgs_ == nullptr) return false;
  for (const bgp::Asn sibling : orgs_->siblings(alpha))
    if (asns_on_paths_.contains(sibling)) return true;
  return false;
}

void IncrementalClassifier::reclassify(std::uint16_t alpha,
                                       AlphaState& state) {
  state.labels.clear();
  if (!bgp::is_public_asn16(alpha) || !alpha_on_any_path(alpha)) return;

  std::vector<BetaCounts> betas;
  betas.reserve(state.betas.size());
  for (const auto& [beta, acc] : state.betas)
    betas.push_back({beta, acc.on_paths.size(), acc.off_paths.size()});
  std::sort(betas.begin(), betas.end(),
            [](const BetaCounts& a, const BetaCounts& b) {
              return a.beta < b.beta;
            });

  label_alpha_counts(alpha, betas, config_,
                     [&state](std::uint16_t beta, Intent intent) {
                       state.labels.emplace(beta, intent);
                     });
}

void IncrementalClassifier::reclassify_dirty() {
  for (const std::uint16_t alpha : dirty_) {
    const auto it = alphas_.find(alpha);
    if (it != alphas_.end()) reclassify(alpha, it->second);
  }
  dirty_.clear();
}

Intent IncrementalClassifier::label_of(Community community) {
  const std::uint16_t alpha = community.alpha();
  auto it = alphas_.find(alpha);
  if (it == alphas_.end()) return Intent::kUnclassified;
  if (dirty_.contains(alpha)) {
    reclassify(alpha, it->second);
    dirty_.erase(alpha);
  }
  const auto label = it->second.labels.find(community.beta());
  return label == it->second.labels.end() ? Intent::kUnclassified
                                          : label->second;
}

IncrementalClassifier::State IncrementalClassifier::export_state() const {
  State state;
  state.entries_ingested = entries_ingested_;
  state.decode_records_ok = decode_records_ok_;
  state.decode_records_skipped = decode_records_skipped_;
  state.asns_on_paths.assign(asns_on_paths_.begin(), asns_on_paths_.end());
  std::sort(state.asns_on_paths.begin(), state.asns_on_paths.end());
  state.dirty.assign(dirty_.begin(), dirty_.end());
  std::sort(state.dirty.begin(), state.dirty.end());

  state.alphas.reserve(alphas_.size());
  for (const auto& [alpha, alpha_state] : alphas_) {
    State::Alpha out;
    out.alpha = alpha;
    out.betas.reserve(alpha_state.betas.size());
    for (const auto& [beta, acc] : alpha_state.betas) {
      State::BetaEvidence evidence;
      evidence.beta = beta;
      evidence.on_paths.assign(acc.on_paths.begin(), acc.on_paths.end());
      evidence.off_paths.assign(acc.off_paths.begin(), acc.off_paths.end());
      std::sort(evidence.on_paths.begin(), evidence.on_paths.end());
      std::sort(evidence.off_paths.begin(), evidence.off_paths.end());
      out.betas.push_back(std::move(evidence));
    }
    std::sort(out.betas.begin(), out.betas.end(),
              [](const State::BetaEvidence& a, const State::BetaEvidence& b) {
                return a.beta < b.beta;
              });
    out.labels.assign(alpha_state.labels.begin(), alpha_state.labels.end());
    std::sort(out.labels.begin(), out.labels.end());
    state.alphas.push_back(std::move(out));
  }
  std::sort(state.alphas.begin(), state.alphas.end(),
            [](const State::Alpha& a, const State::Alpha& b) {
              return a.alpha < b.alpha;
            });
  return state;
}

void IncrementalClassifier::restore_state(const State& state) {
  alphas_.clear();
  asns_on_paths_.clear();
  dirty_.clear();
  entries_ingested_ = state.entries_ingested;
  decode_records_ok_ = state.decode_records_ok;
  decode_records_skipped_ = state.decode_records_skipped;
  asns_on_paths_.insert(state.asns_on_paths.begin(),
                        state.asns_on_paths.end());
  dirty_.insert(state.dirty.begin(), state.dirty.end());
  for (const State::Alpha& alpha : state.alphas) {
    AlphaState& alpha_state = alphas_[alpha.alpha];
    for (const State::BetaEvidence& evidence : alpha.betas) {
      CommunityAccumulator& acc = alpha_state.betas[evidence.beta];
      acc.on_paths.insert(evidence.on_paths.begin(), evidence.on_paths.end());
      acc.off_paths.insert(evidence.off_paths.begin(),
                           evidence.off_paths.end());
    }
    for (const auto& [beta, intent] : alpha.labels)
      alpha_state.labels.emplace(beta, intent);
  }
}

std::vector<std::pair<Community, Intent>>
IncrementalClassifier::label_snapshot() const {
  std::vector<std::pair<Community, Intent>> out;
  std::size_t total = 0;
  for (const auto& [alpha, state] : alphas_) total += state.betas.size();
  out.reserve(total);
  for (const auto& [alpha, state] : alphas_) {
    for (const auto& [beta, acc] : state.betas) {
      const auto label = state.labels.find(beta);
      out.emplace_back(Community(alpha, beta),
                       label == state.labels.end() ? Intent::kUnclassified
                                                   : label->second);
    }
  }
  return out;
}

void IncrementalClassifier::settle_dirty(
    std::vector<std::pair<Community, Intent>>& out) {
  for (const std::uint16_t alpha : dirty_) {
    const auto it = alphas_.find(alpha);
    if (it == alphas_.end()) continue;
    reclassify(alpha, it->second);
    for (const auto& [beta, acc] : it->second.betas) {
      const auto label = it->second.labels.find(beta);
      out.emplace_back(Community(alpha, beta),
                       label == it->second.labels.end()
                           ? Intent::kUnclassified
                           : label->second);
    }
  }
  dirty_.clear();
}

IncrementalClassifier::Totals IncrementalClassifier::totals() {
  reclassify_dirty();
  Totals totals;
  for (const auto& [alpha, state] : alphas_) {
    for (const auto& [beta, acc] : state.betas) {
      ++totals.communities;
      const auto label = state.labels.find(beta);
      if (label == state.labels.end()) {
        ++totals.unclassified;
      } else if (label->second == Intent::kInformation) {
        ++totals.information;
      } else {
        ++totals.action;
      }
    }
  }
  return totals;
}

}  // namespace bgpintent::core
