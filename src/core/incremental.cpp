#include "core/incremental.hpp"

#include <algorithm>

#include "bgp/asn.hpp"
#include "core/labeling.hpp"
#include "core/state_view.hpp"
#include "mrt/mrt_file.hpp"

namespace bgpintent::core {

void IncrementalClassifier::ingest(const bgp::RibEntry& entry) {
  if (view_) detach();
  ++entries_ingested_;
  const std::size_t paths_before = paths_.size();
  const bgp::PathId path_id = paths_.intern(entry.route.path);
  const std::uint64_t path_hash = paths_.hash(path_id);

  // New ASNs on paths can lift the never-on-path exclusion of the alphas
  // equal to them (and, with sibling matching, their org siblings).  A
  // re-interned path cannot introduce new ASNs, so the scan is skipped
  // entirely for the repeat announcements that dominate a live feed.
  if (paths_.size() > paths_before) {
    for (const bgp::Asn asn : paths_.unique_asns(path_id)) {
      if (!asns_on_paths_.insert(asn).second) continue;
      const auto mark_dirty = [this](bgp::Asn candidate) {
        if (candidate <= 0xffff &&
            alphas_.contains(static_cast<std::uint16_t>(candidate)))
          dirty_.insert(static_cast<std::uint16_t>(candidate));
      };
      mark_dirty(asn);
      if (observation_.sibling_aware && orgs_ != nullptr)
        for (const bgp::Asn sibling : orgs_->siblings(asn)) mark_dirty(sibling);
    }
  }

  for (const Community community : entry.route.communities) {
    const std::uint16_t alpha = community.alpha();
    AlphaState& state = alphas_[alpha];
    CommunityAccumulator& acc = state.betas[community.beta()];
    const std::uint64_t memo_key =
        static_cast<std::uint64_t>(path_id) << 16 | alpha;
    const auto [memo, fresh] = on_path_memo_.try_emplace(memo_key, false);
    if (fresh) {
      bool on = paths_.contains(path_id, alpha);
      if (!on && observation_.sibling_aware && orgs_ != nullptr)
        for (const bgp::Asn sibling : orgs_->siblings(alpha))
          if (sibling != alpha && paths_.contains(path_id, sibling)) on = true;
      memo->second = on;
    }
    const bool changed = memo->second
                             ? acc.on_paths.insert(path_hash).second
                             : acc.off_paths.insert(path_hash).second;
    if (changed) dirty_.insert(alpha);
  }
}

void IncrementalClassifier::ingest(std::span<const bgp::RibEntry> entries) {
  for (const bgp::RibEntry& entry : entries) ingest(entry);
}

void IncrementalClassifier::ingest_mrt(const mrt::ByteSource& source,
                                       const mrt::DecodeOptions& options,
                                       mrt::DecodeReport* report) {
  class Sink final : public mrt::EntrySink {
   public:
    explicit Sink(IncrementalClassifier& self) noexcept : self_(&self) {}
    void on_entry(bgp::RibEntry& entry) override { self_->ingest(entry); }

   private:
    IncrementalClassifier* self_;
  };
  Sink sink(*this);
  mrt::DecodeReport local;
  try {
    mrt::decode_rib_stream(source, sink, options, &local);
  } catch (...) {
    record_decode_outcome(local.records_ok, local.records_skipped);
    if (report) *report = std::move(local);
    throw;
  }
  record_decode_outcome(local.records_ok, local.records_skipped);
  if (report) *report = std::move(local);
}

bool IncrementalClassifier::alpha_on_any_path(std::uint16_t alpha) const {
  const auto on_path = [this](bgp::Asn asn) {
    if (view_) {
      const auto& asns = view_->columns().asns_on_paths;
      return std::binary_search(asns.begin(), asns.end(), asn);
    }
    return asns_on_paths_.contains(asn);
  };
  if (on_path(alpha)) return true;
  if (!observation_.sibling_aware || orgs_ == nullptr) return false;
  for (const bgp::Asn sibling : orgs_->siblings(alpha))
    if (on_path(sibling)) return true;
  return false;
}

void IncrementalClassifier::reclassify(std::uint16_t alpha,
                                       AlphaState& state) {
  state.labels.clear();
  if (!bgp::is_public_asn16(alpha) || !alpha_on_any_path(alpha)) return;

  std::vector<BetaCounts> betas;
  betas.reserve(state.betas.size());
  for (const auto& [beta, acc] : state.betas)
    betas.push_back({beta, acc.on_paths.size(), acc.off_paths.size()});
  std::sort(betas.begin(), betas.end(),
            [](const BetaCounts& a, const BetaCounts& b) {
              return a.beta < b.beta;
            });

  label_alpha_counts(alpha, betas, config_,
                     [&state](std::uint16_t beta, Intent intent) {
                       state.labels.emplace(beta, intent);
                     });
}

void IncrementalClassifier::reclassify_dirty() {
  for (const std::uint16_t alpha : dirty_) {
    if (view_) {
      reclassify_view(alpha);
      continue;
    }
    const auto it = alphas_.find(alpha);
    if (it != alphas_.end()) reclassify(alpha, it->second);
  }
  dirty_.clear();
}

Intent IncrementalClassifier::view_label(std::size_t alpha_slot,
                                         std::uint16_t alpha,
                                         std::uint16_t beta) const {
  const auto overlay = view_labels_.find(alpha);
  if (overlay != view_labels_.end()) {
    const auto& labels = overlay->second;
    const auto it = std::lower_bound(
        labels.begin(), labels.end(), beta,
        [](const std::pair<std::uint16_t, Intent>& label, std::uint16_t b) {
          return label.first < b;
        });
    return it == labels.end() || it->first != beta ? Intent::kUnclassified
                                                   : it->second;
  }
  return view_->cached_label(alpha_slot, beta).value_or(Intent::kUnclassified);
}

void IncrementalClassifier::reclassify_view(std::uint16_t alpha) {
  // A present (possibly empty) overlay entry means "settled since the
  // snapshot" and shadows the view's stale cached-label columns.
  auto& labels = view_labels_[alpha];
  labels.clear();
  const auto slot = view_->find_alpha(alpha);
  if (!slot) return;
  if (!bgp::is_public_asn16(alpha) || !alpha_on_any_path(alpha)) return;

  const StateColumns& c = view_->columns();
  const std::uint32_t b0 = c.alpha_beta_begin[*slot];
  const std::uint32_t b1 = c.alpha_beta_begin[*slot + 1];
  // beta_ids are stored sorted per alpha, so the counts come out in the
  // order label_alpha_counts requires without materializing any sets.
  std::vector<BetaCounts> betas;
  betas.reserve(b1 - b0);
  for (std::uint32_t b = b0; b < b1; ++b)
    betas.push_back(
        {c.beta_ids[b],
         static_cast<std::size_t>(c.beta_on_begin[b + 1] - c.beta_on_begin[b]),
         static_cast<std::size_t>(c.beta_off_begin[b + 1] -
                                  c.beta_off_begin[b])});
  label_alpha_counts(alpha, betas, config_,
                     [&labels](std::uint16_t beta, Intent intent) {
                       labels.emplace_back(beta, intent);
                     });
  std::sort(labels.begin(), labels.end());
}

Intent IncrementalClassifier::label_of(Community community) {
  const std::uint16_t alpha = community.alpha();
  if (view_) {
    const auto slot = view_->find_alpha(alpha);
    if (!slot) return Intent::kUnclassified;
    if (dirty_.contains(alpha)) {
      reclassify_view(alpha);
      dirty_.erase(alpha);
    }
    return view_label(*slot, alpha, community.beta());
  }
  auto it = alphas_.find(alpha);
  if (it == alphas_.end()) return Intent::kUnclassified;
  if (dirty_.contains(alpha)) {
    reclassify(alpha, it->second);
    dirty_.erase(alpha);
  }
  const auto label = it->second.labels.find(community.beta());
  return label == it->second.labels.end() ? Intent::kUnclassified
                                          : label->second;
}

IncrementalClassifier::State IncrementalClassifier::export_state() const {
  if (view_) {
    // Materialize the columns, then patch in what has moved since the
    // borrow: the live counters, the live dirty set, and the overlay of
    // alphas reclassified against the (immutable) snapshot labels.
    State state = view_->materialize();
    state.entries_ingested = entries_ingested_;
    state.decode_records_ok = decode_records_ok_;
    state.decode_records_skipped = decode_records_skipped_;
    state.dirty.assign(dirty_.begin(), dirty_.end());
    std::sort(state.dirty.begin(), state.dirty.end());
    for (State::Alpha& alpha : state.alphas) {
      const auto overlay = view_labels_.find(alpha.alpha);
      if (overlay != view_labels_.end()) alpha.labels = overlay->second;
    }
    return state;
  }
  State state;
  state.entries_ingested = entries_ingested_;
  state.decode_records_ok = decode_records_ok_;
  state.decode_records_skipped = decode_records_skipped_;
  state.asns_on_paths.assign(asns_on_paths_.begin(), asns_on_paths_.end());
  std::sort(state.asns_on_paths.begin(), state.asns_on_paths.end());
  state.dirty.assign(dirty_.begin(), dirty_.end());
  std::sort(state.dirty.begin(), state.dirty.end());

  state.alphas.reserve(alphas_.size());
  for (const auto& [alpha, alpha_state] : alphas_) {
    State::Alpha out;
    out.alpha = alpha;
    out.betas.reserve(alpha_state.betas.size());
    for (const auto& [beta, acc] : alpha_state.betas) {
      State::BetaEvidence evidence;
      evidence.beta = beta;
      evidence.on_paths.assign(acc.on_paths.begin(), acc.on_paths.end());
      evidence.off_paths.assign(acc.off_paths.begin(), acc.off_paths.end());
      std::sort(evidence.on_paths.begin(), evidence.on_paths.end());
      std::sort(evidence.off_paths.begin(), evidence.off_paths.end());
      out.betas.push_back(std::move(evidence));
    }
    std::sort(out.betas.begin(), out.betas.end(),
              [](const State::BetaEvidence& a, const State::BetaEvidence& b) {
                return a.beta < b.beta;
              });
    out.labels.assign(alpha_state.labels.begin(), alpha_state.labels.end());
    std::sort(out.labels.begin(), out.labels.end());
    state.alphas.push_back(std::move(out));
  }
  std::sort(state.alphas.begin(), state.alphas.end(),
            [](const State::Alpha& a, const State::Alpha& b) {
              return a.alpha < b.alpha;
            });
  return state;
}

void IncrementalClassifier::restore_state(const State& state) {
  view_.reset();
  view_labels_.clear();
  alphas_.clear();
  asns_on_paths_.clear();
  dirty_.clear();
  entries_ingested_ = state.entries_ingested;
  decode_records_ok_ = state.decode_records_ok;
  decode_records_skipped_ = state.decode_records_skipped;
  asns_on_paths_.insert(state.asns_on_paths.begin(),
                        state.asns_on_paths.end());
  dirty_.insert(state.dirty.begin(), state.dirty.end());
  for (const State::Alpha& alpha : state.alphas) {
    AlphaState& alpha_state = alphas_[alpha.alpha];
    for (const State::BetaEvidence& evidence : alpha.betas) {
      CommunityAccumulator& acc = alpha_state.betas[evidence.beta];
      acc.on_paths.insert(evidence.on_paths.begin(), evidence.on_paths.end());
      acc.off_paths.insert(evidence.off_paths.begin(),
                           evidence.off_paths.end());
    }
    for (const auto& [beta, intent] : alpha.labels)
      alpha_state.labels.emplace(beta, intent);
  }
}

void IncrementalClassifier::restore_state(const State& state,
                                          bgp::PathTable paths) {
  restore_state(state);
  paths_ = std::move(paths);
  on_path_memo_.clear();
}

void IncrementalClassifier::restore_view(
    std::shared_ptr<const StateView> view) {
  alphas_.clear();
  paths_ = bgp::PathTable();
  on_path_memo_.clear();
  asns_on_paths_.clear();
  view_labels_.clear();
  view_ = std::move(view);
  const StateColumns& c = view_->columns();
  entries_ingested_ = static_cast<std::size_t>(c.entries_ingested);
  decode_records_ok_ = c.decode_records_ok;
  decode_records_skipped_ = c.decode_records_skipped;
  dirty_.clear();
  dirty_.insert(c.dirty.begin(), c.dirty.end());
}

void IncrementalClassifier::detach() {
  // Order matters: export_state() and materialize_paths() both read the
  // view, restore_state() drops it.  The memo is keyed by (PathId, alpha);
  // ids are preserved by the path import and the memo starts empty,
  // exactly like a restore_state() rebuild.
  State state = export_state();
  bgp::PathTable paths = view_->materialize_paths();
  restore_state(state, std::move(paths));
}

bgp::PathTable::ExportedColumns IncrementalClassifier::path_columns() const {
  if (!view_) return paths_.export_columns();
  const bgp::PathTable::ImportColumns& p = view_->columns().paths;
  bgp::PathTable::ExportedColumns out;
  out.asn_arena = p.asn_arena;
  out.uniq_arena = p.uniq_arena;
  out.seg_types.assign(p.seg_types.begin(), p.seg_types.end());
  out.seg_counts.assign(p.seg_counts.begin(), p.seg_counts.end());
  out.asn_begin.assign(p.asn_begin.begin(), p.asn_begin.end());
  out.asn_count.assign(p.asn_count.begin(), p.asn_count.end());
  out.seg_begin.assign(p.seg_begin.begin(), p.seg_begin.end());
  out.seg_count.assign(p.seg_count.begin(), p.seg_count.end());
  out.uniq_begin.assign(p.uniq_begin.begin(), p.uniq_begin.end());
  out.uniq_count.assign(p.uniq_count.begin(), p.uniq_count.end());
  out.hashes.assign(p.hashes.begin(), p.hashes.end());
  return out;
}

std::vector<std::pair<Community, Intent>>
IncrementalClassifier::label_snapshot() const {
  if (view_) {
    // The serve columns are label_snapshot() pre-flattened by the writer;
    // only overlay alphas (reclassified since the borrow) need patching.
    const StateColumns& c = view_->columns();
    std::vector<std::pair<Community, Intent>> out;
    out.reserve(c.serve_wires.size());
    for (std::size_t i = 0; i < c.serve_wires.size(); ++i) {
      const Community community(
          static_cast<std::uint16_t>(c.serve_wires[i] >> 16),
          static_cast<std::uint16_t>(c.serve_wires[i] & 0xffff));
      Intent intent = c.serve_intents[i];
      if (!view_labels_.empty() && view_labels_.contains(community.alpha())) {
        const auto slot = view_->find_alpha(community.alpha());
        intent = view_label(*slot, community.alpha(), community.beta());
      }
      out.emplace_back(community, intent);
    }
    return out;
  }
  std::vector<std::pair<Community, Intent>> out;
  std::size_t total = 0;
  for (const auto& [alpha, state] : alphas_) total += state.betas.size();
  out.reserve(total);
  for (const auto& [alpha, state] : alphas_) {
    for (const auto& [beta, acc] : state.betas) {
      const auto label = state.labels.find(beta);
      out.emplace_back(Community(alpha, beta),
                       label == state.labels.end() ? Intent::kUnclassified
                                                   : label->second);
    }
  }
  return out;
}

void IncrementalClassifier::settle_dirty(
    std::vector<std::pair<Community, Intent>>& out) {
  if (view_) {
    const StateColumns& c = view_->columns();
    for (const std::uint16_t alpha : dirty_) {
      const auto slot = view_->find_alpha(alpha);
      if (!slot) continue;
      reclassify_view(alpha);
      const std::uint32_t b0 = c.alpha_beta_begin[*slot];
      const std::uint32_t b1 = c.alpha_beta_begin[*slot + 1];
      for (std::uint32_t b = b0; b < b1; ++b)
        out.emplace_back(Community(alpha, c.beta_ids[b]),
                         view_label(*slot, alpha, c.beta_ids[b]));
    }
    dirty_.clear();
    return;
  }
  for (const std::uint16_t alpha : dirty_) {
    const auto it = alphas_.find(alpha);
    if (it == alphas_.end()) continue;
    reclassify(alpha, it->second);
    for (const auto& [beta, acc] : it->second.betas) {
      const auto label = it->second.labels.find(beta);
      out.emplace_back(Community(alpha, beta),
                       label == it->second.labels.end()
                           ? Intent::kUnclassified
                           : label->second);
    }
  }
  dirty_.clear();
}

IncrementalClassifier::Totals IncrementalClassifier::totals() {
  reclassify_dirty();
  Totals totals;
  if (view_) {
    const StateColumns& c = view_->columns();
    for (std::size_t a = 0; a < c.alpha_ids.size(); ++a) {
      const std::uint16_t alpha = c.alpha_ids[a];
      for (std::uint32_t b = c.alpha_beta_begin[a];
           b < c.alpha_beta_begin[a + 1]; ++b) {
        ++totals.communities;
        switch (view_label(a, alpha, c.beta_ids[b])) {
          case Intent::kUnclassified: ++totals.unclassified; break;
          case Intent::kInformation: ++totals.information; break;
          default: ++totals.action; break;
        }
      }
    }
    return totals;
  }
  for (const auto& [alpha, state] : alphas_) {
    for (const auto& [beta, acc] : state.betas) {
      ++totals.communities;
      const auto label = state.labels.find(beta);
      if (label == state.labels.end()) {
        ++totals.unclassified;
      } else if (label->second == Intent::kInformation) {
        ++totals.information;
      } else {
        ++totals.action;
      }
    }
  }
  return totals;
}

}  // namespace bgpintent::core
