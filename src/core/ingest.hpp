// Streaming interned MRT ingest: decode -> intern -> packed tuples in one
// pass, with no materialized RibEntry vector in between.
//
// The materializing pipeline (`read_rib_entries` + `intern_entries`) holds
// every decoded row — prefix, full AsPath, every community vector — live at
// once before collapsing them into the interned representation.  MrtIngest
// is the streaming alternative: each decoded row flows through an
// mrt::EntrySink that interns its path into one bgp::PathTable and appends
// 8-byte (PathId, community) records, so peak memory is proportional to
// the number of *unique* paths plus one tuple record per (row, community),
// never to the total row count (docs/PERFORMANCE.md).
//
// Multiple sources accumulate into one table (the CLI feeds every input
// file through one MrtIngest); DecodeReports merge across add() calls.
//
// add_parallel keeps the output bit-identical to sequential add at any
// pool size: chunk workers intern into chunk-local PathTables, and the
// caller's thread merges chunks in submission order by re-interning each
// local path into the global table — global PathIds come out in
// first-appearance order, exactly as the sequential pass assigns them.
// In-flight memory stays bounded at ~2x the pool size in chunks.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "bgp/path_table.hpp"
#include "mrt/decode.hpp"
#include "mrt/source.hpp"

namespace bgpintent::util {
class ThreadPool;
}

namespace bgpintent::core {

class MrtIngest {
 public:
  explicit MrtIngest(mrt::DecodeOptions options = {}) noexcept
      : options_(options) {}

  /// Decodes one source straight into the accumulator (zero-copy record
  /// bodies when the source is mmap-backed).  Strict/tolerant behavior and
  /// error budgets follow the constructor's DecodeOptions; on throw, the
  /// partial decode outcome is still merged into report().
  void add(const mrt::ByteSource& source);

  /// istream variant: strict mode streams record-by-record (bounded memory
  /// on pipes); tolerant mode buffers the stream for resync.
  void add(std::istream& in);

  /// Parallel variant of add(source): chunked decode+intern on `pool`,
  /// merged on the calling thread in submission order.  paths(), tuples(),
  /// entries(), and report() end up identical to sequential add() at any
  /// pool size.
  void add_parallel(const mrt::ByteSource& source, util::ThreadPool& pool);

  /// Parallel variant of add(istream): strict mode frames records off the
  /// stream with owned bodies (bounded memory, like
  /// read_rib_entries_parallel); tolerant mode buffers the stream first.
  void add_parallel(std::istream& in, util::ThreadPool& pool);

  [[nodiscard]] const bgp::PathTable& paths() const noexcept { return paths_; }
  [[nodiscard]] std::span<const bgp::InternedTuple> tuples() const noexcept {
    return tuples_;
  }
  /// Decode outcomes merged across every add() call.
  [[nodiscard]] const mrt::DecodeReport& report() const noexcept {
    return report_;
  }
  /// Total decoded rows (including rows without communities, which
  /// contribute no tuples) — what the materializing path's entries.size()
  /// would have been.
  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }

  /// Bytes held by the interned representation: the path table's arenas
  /// plus the tuple vector's capacity.  The streaming-vs-materializing
  /// bench reports this against the RibEntry-vector figure.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return paths_.memory_bytes() +
           tuples_.capacity() * sizeof(bgp::InternedTuple);
  }

 private:
  mrt::DecodeOptions options_;
  bgp::PathTable paths_;
  std::vector<bgp::InternedTuple> tuples_;
  mrt::DecodeReport report_;
  std::size_t entries_ = 0;
};

}  // namespace bgpintent::core
