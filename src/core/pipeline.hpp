// End-to-end inference pipeline: BGP data in (RIB entries, tuples, or MRT
// streams), coarse-grained intent labels out.  This is the library's main
// entry point — the programmatic equivalent of running the paper's released
// tool over one week of RouteViews/RIS data.
//
// With threads != 1 the three hot stages run on one work-stealing pool:
// chunked MRT decode, alpha-sharded observation indexing, and per-alpha
// clustering + classification.  Output is identical for every thread
// count; threads == 1 takes the sequential reference implementation
// end-to-end (docs/THREADING.md).
#pragma once

#include <iosfwd>

#include "core/classifier.hpp"
#include "core/evaluation.hpp"
#include "core/observations.hpp"
#include "mrt/decode.hpp"

namespace bgpintent::mrt {
class ByteSource;
}

namespace bgpintent::core {

class MrtIngest;

struct PipelineConfig {
  ObservationConfig observation;
  ClassifierConfig classifier;
  /// Worker threads for ingest, indexing, and classification.
  /// 1 = the sequential reference path (default); 0 = hardware
  /// concurrency; N = exactly N workers.  Results do not depend on this.
  unsigned threads = 1;
  /// MRT decode behavior for run_mrt (strict by default; tolerant mode
  /// skips malformed records within an error budget — docs/ROBUSTNESS.md).
  mrt::DecodeOptions decode;
};

/// Inference output bundled with the index it was computed from (the index
/// is needed for evaluation and for the figure-level statistics).
struct PipelineResult {
  ObservationIndex observations;
  InferenceResult inference;
  /// Decode outcome of run_mrt (default-constructed for the non-MRT
  /// entry points): records decoded/skipped, resync histogram, captured
  /// errors.  Reports from multiple files can be merge()d by the caller.
  mrt::DecodeReport decode_report;
  /// RIB rows that flowed into the run: decoded rows for the MRT entry
  /// points (including rows without communities), entries.size() for the
  /// RibEntry one, zero for the pre-extracted-tuple one.
  std::size_t entries_ingested = 0;

  [[nodiscard]] Evaluation score(const dict::DictionaryStore& truth) const {
    return evaluate(observations, inference, truth);
  }
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {}) : config_(config) {}

  /// Optional context: organizations for sibling-aware matching and
  /// relationships for the customer:peer feature.  Pointers must outlive
  /// run() calls; pass nullptr to disable.
  void set_org_map(const topo::OrgMap* orgs) noexcept { orgs_ = orgs; }
  void set_relationships(const rel::RelationshipDataset* rels) noexcept {
    relationships_ = rels;
  }

  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }

  /// Runs over pre-extracted tuples.
  [[nodiscard]] PipelineResult run(
      std::span<const bgp::PathCommunityTuple> tuples) const;

  /// Runs over RIB entries.
  [[nodiscard]] PipelineResult run(
      std::span<const bgp::RibEntry> entries) const;

  /// Runs over an MRT stream (TABLE_DUMP_V2 snapshots and/or BGP4MP
  /// updates).  Strict decode (the default) throws mrt::MrtError on
  /// malformed input; tolerant decode skips damaged records and throws
  /// mrt::DecodeBudgetError only past the error budget.  The decode
  /// outcome lands in PipelineResult::decode_report.
  ///
  /// Both overloads stream decoded rows straight into the interned core
  /// (core::MrtIngest): no RibEntry vector is ever materialized, so peak
  /// memory follows unique paths + packed tuples, not total rows
  /// (docs/PERFORMANCE.md).  The ByteSource overload additionally decodes
  /// zero-copy out of an mmap'd file when the source is one.
  [[nodiscard]] PipelineResult run_mrt(std::istream& in) const;
  [[nodiscard]] PipelineResult run_mrt(const mrt::ByteSource& source) const;

  /// Runs the back half over an already-accumulated streaming ingest —
  /// for callers that fed several sources into one MrtIngest.  The
  /// ingest's merged decode report and row count carry into the result.
  [[nodiscard]] PipelineResult run(const MrtIngest& ingest) const;

 private:
  /// Shared back half: interned tuples -> index -> labels.  `pool` null
  /// selects the sequential reference implementation.
  [[nodiscard]] PipelineResult run_interned(
      const bgp::PathTable& paths, std::span<const bgp::InternedTuple> tuples,
      util::ThreadPool* pool) const;

  PipelineConfig config_;
  const topo::OrgMap* orgs_ = nullptr;
  const rel::RelationshipDataset* relationships_ = nullptr;
};

}  // namespace bgpintent::core
