#include "core/ingest.hpp"

#include "mrt/framing.hpp"
#include "mrt/mrt_file.hpp"
#include "util/thread_pool.hpp"

#include <deque>
#include <future>
#include <istream>
#include <memory>
#include <utility>

namespace bgpintent::core {

namespace {

/// The interning sink: each decoded row interns its path once and appends
/// one 8-byte tuple per community.  Rows without communities contribute no
/// tuples and intern nothing, exactly like bgp::intern_entries — so the
/// streaming table/tuple stream is identical to materialize-then-intern.
class InternSink final : public mrt::EntrySink {
 public:
  InternSink(bgp::PathTable& paths, std::vector<bgp::InternedTuple>& tuples,
             std::size_t& entries) noexcept
      : paths_(&paths), tuples_(&tuples), entries_(&entries) {}

  void on_entry(bgp::RibEntry& entry) override {
    ++*entries_;
    if (entry.route.communities.empty()) return;
    const bgp::PathId id = paths_->intern(entry.route.path);
    for (const bgp::Community community : entry.route.communities)
      tuples_->push_back(bgp::InternedTuple{id, community});
  }

 private:
  bgp::PathTable* paths_;
  std::vector<bgp::InternedTuple>* tuples_;
  std::size_t* entries_;
};

/// One decoded chunk's worth of interned state, local to its worker.
struct ChunkOutcome {
  bgp::PathTable paths;                    // chunk-local ids
  std::vector<bgp::InternedTuple> tuples;  // referencing chunk-local ids
  std::size_t entries = 0;
  mrt::DecodeReport report;  // used by the tolerant path only
};

/// References into one MrtIngest's accumulators plus the per-add report.
struct Accumulator {
  bgp::PathTable& paths;
  std::vector<bgp::InternedTuple>& tuples;
  std::size_t& entries;
  mrt::DecodeReport& report;
};

/// Folds one chunk into the global accumulator.  Chunks arrive in
/// submission order and local ids 0..n-1 are in first-appearance order
/// within the chunk, so re-interning them in order assigns global ids in
/// global first-appearance order — the same ids the sequential pass
/// assigns.  Tuples then remap local -> global.
void merge_chunk(ChunkOutcome&& outcome, Accumulator& acc) {
  acc.entries += outcome.entries;
  std::vector<bgp::PathId> remap(outcome.paths.size());
  for (std::size_t id = 0; id < outcome.paths.size(); ++id)
    remap[id] = acc.paths.intern(
        outcome.paths.materialize(static_cast<bgp::PathId>(id)));
  for (const bgp::InternedTuple& tuple : outcome.tuples)
    acc.tuples.push_back(bgp::InternedTuple{remap[tuple.path], tuple.community});
  acc.report.merge(outcome.report);
}

/// Bounded in-flight chunk queue shared by the parallel ingest flavors.
/// Chunks may hold views into the source image, so in-flight futures are
/// always drained — even when framing or a worker throws — before control
/// leaves the ingest call.
class ChunkQueue {
 public:
  ChunkQueue(util::ThreadPool& pool, Accumulator& acc) noexcept
      : pool_(&pool), acc_(&acc),
        max_in_flight_(static_cast<std::size_t>(pool.size()) * 2 + 2) {}

  template <typename Task>
  void submit(Task&& task) {
    in_flight_.push_back(pool_->submit(std::forward<Task>(task)));
    while (in_flight_.size() >= max_in_flight_) drain_front();
  }

  void drain_front() {
    ChunkOutcome outcome = in_flight_.front().get();
    in_flight_.pop_front();
    merge_chunk(std::move(outcome), *acc_);
  }

  void drain_all() {
    while (!in_flight_.empty()) drain_front();
  }

  [[nodiscard]] bool empty() const noexcept { return in_flight_.empty(); }

  /// Exception path: wait for every in-flight chunk (their results and
  /// errors are discarded) so no task outlives the source image.
  void abandon() noexcept {
    while (!in_flight_.empty()) {
      try {
        in_flight_.front().get();
      } catch (...) {
      }
      in_flight_.pop_front();
    }
  }

 private:
  util::ThreadPool* pool_;
  Accumulator* acc_;
  std::size_t max_in_flight_;
  std::deque<std::future<ChunkOutcome>> in_flight_;
};

/// Parallel strict ingest of an in-memory image: the calling thread frames
/// zero-copy RecordViews and decodes peer tables; workers decode+intern
/// chunks.  Mirrors read_rib_entries_parallel's strict structure
/// (records_ok counted at framing time, body errors rethrown in chunk
/// order).
void ingest_parallel_strict_image(std::span<const std::uint8_t> data,
                                  util::ThreadPool& pool, Accumulator& acc) {
  ChunkQueue queue(pool, acc);
  auto peers = std::make_shared<const std::vector<bgp::VantagePointId>>();
  auto submit_chunk = [&](std::vector<mrt::RecordView>&& records) {
    queue.submit([records = std::move(records), snapshot = peers]() {
      ChunkOutcome outcome;
      InternSink sink(outcome.paths, outcome.tuples, outcome.entries);
      mrt::RowScratch scratch;
      for (const mrt::RecordView& record : records)
        mrt::decode_data_record(record, *snapshot, sink, scratch);
      return outcome;
    });
  };

  mrt::StrictFramer framer(data);
  mrt::RecordView record;
  std::vector<mrt::RecordView> batch;
  try {
    while (framer.next(record)) {
      ++acc.report.records_ok;
      if (mrt::is_peer_index_table(record)) {
        if (!batch.empty()) {
          submit_chunk(std::move(batch));
          batch = {};
        }
        peers = std::make_shared<const std::vector<bgp::VantagePointId>>(
            mrt::decode_peer_index_table(record));
        continue;
      }
      batch.push_back(record);
      if (batch.size() >= mrt::kChunkRecords) {
        submit_chunk(std::move(batch));
        batch = {};
      }
    }
    if (!batch.empty()) submit_chunk(std::move(batch));
    queue.drain_all();
  } catch (...) {
    queue.abandon();
    throw;
  }
}

/// Parallel tolerant ingest of an in-memory image; the tolerant twin, with
/// the same deferred-budget drain discipline as
/// read_rib_entries_parallel's tolerant path: a budget trip never abandons
/// sibling chunks, and chunk reports merge in submission order.
void ingest_parallel_tolerant_image(std::span<const std::uint8_t> data,
                                    util::ThreadPool& pool,
                                    const mrt::DecodeOptions& options,
                                    Accumulator& acc) {
  ChunkQueue queue(pool, acc);
  auto peers = std::make_shared<const std::vector<bgp::VantagePointId>>();
  bool budget_tripped = false;
  auto drain_front = [&]() {
    queue.drain_front();
    if (acc.report.over_budget(options)) budget_tripped = true;
  };
  auto submit_chunk = [&](std::vector<mrt::TolerantFramer::Framed>&& frames) {
    queue.submit([frames = std::move(frames), snapshot = peers]() {
      ChunkOutcome outcome;
      InternSink sink(outcome.paths, outcome.tuples, outcome.entries);
      mrt::RowScratch scratch;
      for (const mrt::TolerantFramer::Framed& framed : frames) {
        try {
          mrt::decode_data_record(framed.record, *snapshot, sink, scratch);
          ++outcome.report.records_ok;
        } catch (const mrt::MrtError& error) {
          mrt::record_body_failure(outcome.report, framed, error.what());
        }
      }
      return outcome;
    });
  };

  mrt::TolerantFramer framer(data, options, acc.report);
  std::vector<mrt::TolerantFramer::Framed> batch;
  try {
    try {
      mrt::TolerantFramer::Framed framed;
      while (!budget_tripped && framer.next(framed)) {
        if (mrt::is_peer_index_table(framed.record)) {
          if (!batch.empty()) {
            submit_chunk(std::move(batch));
            batch = {};
          }
          try {
            peers = std::make_shared<const std::vector<bgp::VantagePointId>>(
                mrt::decode_peer_index_table(framed.record));
            ++acc.report.records_ok;
          } catch (const mrt::MrtError& error) {
            // Keep the previous peer-table snapshot, exactly as the
            // sequential tolerant decode does.
            mrt::record_body_failure(acc.report, framed, error.what());
            if (acc.report.over_budget(options)) budget_tripped = true;
          }
          continue;
        }
        batch.push_back(framed);
        if (batch.size() >= mrt::kChunkRecords) {
          submit_chunk(std::move(batch));
          batch = {};
        }
      }
    } catch (const mrt::DecodeBudgetError&) {
      // Framing-side budget trip; the shared report already reflects it.
      budget_tripped = true;
    }
    if (!budget_tripped && !batch.empty()) submit_chunk(std::move(batch));
    while (!queue.empty()) drain_front();
    if (budget_tripped) mrt::throw_budget(acc.report);
    mrt::check_final_budget(acc.report, options);
  } catch (...) {
    queue.abandon();
    throw;
  }
}

/// Parallel strict ingest off an istream: framing cannot be split and the
/// stream cannot be viewed, so the calling thread reads owned record
/// bodies (bounded by the in-flight chunk cap) and workers decode+intern.
void ingest_parallel_strict_stream(std::istream& in, util::ThreadPool& pool,
                                   Accumulator& acc) {
  ChunkQueue queue(pool, acc);
  auto peers = std::make_shared<const std::vector<bgp::VantagePointId>>();
  auto submit_chunk = [&](std::vector<mrt::MrtRecord>&& records) {
    queue.submit([records = std::move(records), snapshot = peers]() {
      ChunkOutcome outcome;
      InternSink sink(outcome.paths, outcome.tuples, outcome.entries);
      mrt::RowScratch scratch;
      for (const mrt::MrtRecord& record : records)
        mrt::decode_data_record(
            mrt::RecordView{record.timestamp, record.type, record.subtype,
                            record.body},
            *snapshot, sink, scratch);
      return outcome;
    });
  };

  mrt::MrtReader reader(in);
  mrt::MrtRecord record;
  std::vector<mrt::MrtRecord> batch;
  try {
    while (reader.next(record)) {
      ++acc.report.records_ok;
      if (mrt::is_peer_index_table(record.type, record.subtype)) {
        if (!batch.empty()) {
          submit_chunk(std::move(batch));
          batch = {};
        }
        peers = std::make_shared<const std::vector<bgp::VantagePointId>>(
            mrt::decode_peer_index_table(
                mrt::RecordView{record.timestamp, record.type, record.subtype,
                                record.body}));
        continue;
      }
      batch.push_back(std::move(record));
      record = {};
      if (batch.size() >= mrt::kChunkRecords) {
        submit_chunk(std::move(batch));
        batch = {};
      }
    }
    if (!batch.empty()) submit_chunk(std::move(batch));
    queue.drain_all();
  } catch (...) {
    queue.abandon();
    throw;
  }
}

}  // namespace

void MrtIngest::add(const mrt::ByteSource& source) {
  InternSink sink(paths_, tuples_, entries_);
  mrt::DecodeReport local;
  try {
    mrt::decode_rib_stream(source, sink, options_, &local);
  } catch (...) {
    report_.merge(local);
    throw;
  }
  report_.merge(local);
}

void MrtIngest::add(std::istream& in) {
  InternSink sink(paths_, tuples_, entries_);
  mrt::DecodeReport local;
  try {
    mrt::decode_rib_stream(in, sink, options_, &local);
  } catch (...) {
    report_.merge(local);
    throw;
  }
  report_.merge(local);
}

void MrtIngest::add_parallel(const mrt::ByteSource& source,
                             util::ThreadPool& pool) {
  mrt::DecodeReport local;
  Accumulator acc{paths_, tuples_, entries_, local};
  try {
    if (options_.tolerant())
      ingest_parallel_tolerant_image(source.data(), pool, options_, acc);
    else
      ingest_parallel_strict_image(source.data(), pool, acc);
  } catch (...) {
    report_.merge(local);
    throw;
  }
  report_.merge(local);
}

void MrtIngest::add_parallel(std::istream& in, util::ThreadPool& pool) {
  if (options_.tolerant()) {
    // Resync needs random access; buffer the stream like the sequential
    // tolerant path, then take the image route.
    const mrt::BufferSource source(mrt::slurp_stream(in));
    add_parallel(source, pool);
    return;
  }
  mrt::DecodeReport local;
  Accumulator acc{paths_, tuples_, entries_, local};
  try {
    ingest_parallel_strict_stream(in, pool, acc);
  } catch (...) {
    report_.merge(local);
    throw;
  }
  report_.merge(local);
}

}  // namespace bgpintent::core
