#include "core/large.hpp"

#include <algorithm>
#include <map>

#include "bgp/asn.hpp"

namespace bgpintent::core {

namespace {
std::uint64_t function_key(std::uint32_t alpha, std::uint32_t beta) noexcept {
  return static_cast<std::uint64_t>(alpha) << 32 | beta;
}
}  // namespace

Intent LargeInferenceResult::label_of(
    const bgp::LargeCommunity& c) const noexcept {
  const auto it = function_labels.find(function_key(c.alpha(), c.beta()));
  return it == function_labels.end() ? Intent::kUnclassified : it->second;
}

LargeObservationIndex LargeObservationIndex::from_entries(
    std::span<const bgp::RibEntry> entries) {
  struct Accumulator {
    std::unordered_set<std::uint32_t> gammas;
    std::unordered_set<std::uint64_t> on_paths;
    std::unordered_set<std::uint64_t> off_paths;
  };
  std::map<std::uint64_t, Accumulator> acc;  // ordered for sorted output
  LargeObservationIndex index;
  std::unordered_set<std::uint64_t> values_seen;

  for (const bgp::RibEntry& entry : entries) {
    const std::uint64_t path_hash = entry.route.path.hash();
    for (const bgp::Asn asn : entry.route.path.unique_asns())
      index.asns_on_paths_.insert(asn);
    for (const bgp::LargeCommunity& community : entry.route.large_communities) {
      Accumulator& a = acc[function_key(community.alpha(), community.beta())];
      a.gammas.insert(community.gamma());
      values_seen.insert(function_key(community.alpha(), community.beta()) ^
                         (static_cast<std::uint64_t>(community.gamma()) << 17));
      if (entry.route.path.contains(community.alpha()))
        a.on_paths.insert(path_hash);
      else
        a.off_paths.insert(path_hash);
    }
  }
  index.values_ = values_seen.size();
  index.stats_.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    LargeFunctionStats stats;
    stats.alpha = static_cast<std::uint32_t>(key >> 32);
    stats.beta = static_cast<std::uint32_t>(key & 0xffffffffu);
    stats.gamma_count = a.gammas.size();
    stats.on_path_paths = a.on_paths.size();
    stats.off_path_paths = a.off_paths.size();
    index.stats_.push_back(stats);
  }
  return index;
}

const LargeFunctionStats* LargeObservationIndex::find(std::uint32_t alpha,
                                                      std::uint32_t beta) const {
  const auto it = std::lower_bound(
      stats_.begin(), stats_.end(), function_key(alpha, beta),
      [](const LargeFunctionStats& s, std::uint64_t key) {
        return function_key(s.alpha, s.beta) < key;
      });
  if (it == stats_.end() || it->alpha != alpha || it->beta != beta)
    return nullptr;
  return &*it;
}

std::vector<std::uint32_t> LargeObservationIndex::observed_betas(
    std::uint32_t alpha) const {
  std::vector<std::uint32_t> out;
  for (const LargeFunctionStats& stats : stats_)
    if (stats.alpha == alpha) out.push_back(stats.beta);
  return out;
}

std::vector<std::uint32_t> LargeObservationIndex::alphas() const {
  std::vector<std::uint32_t> out;
  for (const LargeFunctionStats& stats : stats_)
    if (out.empty() || out.back() != stats.alpha) out.push_back(stats.alpha);
  return out;
}

bool LargeObservationIndex::alpha_on_any_path(std::uint32_t alpha) const {
  return asns_on_paths_.contains(alpha);
}

LargeInferenceResult classify_large(const LargeObservationIndex& observations,
                                    const LargeClassifierConfig& config) {
  LargeInferenceResult result;
  for (const std::uint32_t alpha : observations.alphas()) {
    const auto betas = observations.observed_betas(alpha);
    // Exclusions mirror the regular classifier: reserved/private alphas and
    // alphas absent from every path.
    const bool excluded = bgp::is_reserved_asn(alpha) ||
                          bgp::is_private_asn16(alpha) ||
                          bgp::is_private_asn32(alpha) ||
                          bgp::is_documentation_asn(alpha) ||
                          !observations.alpha_on_any_path(alpha);
    if (excluded) {
      for (const std::uint32_t beta : betas) {
        const LargeFunctionStats* stats = observations.find(alpha, beta);
        result.excluded_never_on_path += stats->gamma_count;
      }
      continue;
    }
    // Gap-cluster the 32-bit beta values.
    std::size_t begin = 0;
    for (std::size_t i = 1; i <= betas.size(); ++i) {
      const bool split =
          i == betas.size() ||
          betas[i] - betas[i - 1] > config.min_gap;
      if (!split) continue;
      // Pool the cluster [begin, i).
      std::size_t pooled_on = 0;
      std::size_t pooled_off = 0;
      for (std::size_t k = begin; k < i; ++k) {
        const LargeFunctionStats* stats = observations.find(alpha, betas[k]);
        pooled_on += stats->on_path_paths;
        pooled_off += stats->off_path_paths;
      }
      Intent intent;
      if (pooled_off == 0)
        intent = Intent::kInformation;
      else if (pooled_on == 0)
        intent = Intent::kAction;
      else
        intent = static_cast<double>(pooled_on) /
                             static_cast<double>(pooled_off) >=
                         config.ratio_threshold
                     ? Intent::kInformation
                     : Intent::kAction;
      for (std::size_t k = begin; k < i; ++k) {
        result.function_labels.emplace(function_key(alpha, betas[k]), intent);
        const LargeFunctionStats* stats = observations.find(alpha, betas[k]);
        if (intent == Intent::kInformation)
          result.information_count += stats->gamma_count;
        else
          result.action_count += stats->gamma_count;
      }
      begin = i;
    }
  }
  return result;
}

}  // namespace bgpintent::core
