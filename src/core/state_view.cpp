#include "core/state_view.hpp"

#include <algorithm>

namespace bgpintent::core {

std::optional<std::size_t> StateView::find_alpha(
    std::uint16_t alpha) const noexcept {
  const auto& ids = columns_.alpha_ids;
  const auto it = std::lower_bound(ids.begin(), ids.end(), alpha);
  if (it == ids.end() || *it != alpha) return std::nullopt;
  return static_cast<std::size_t>(it - ids.begin());
}

std::optional<Intent> StateView::cached_label(
    std::size_t alpha_slot, std::uint16_t beta) const noexcept {
  const auto begin =
      columns_.label_betas.begin() + columns_.alpha_label_begin[alpha_slot];
  const auto end =
      columns_.label_betas.begin() + columns_.alpha_label_begin[alpha_slot + 1];
  const auto it = std::lower_bound(begin, end, beta);
  if (it == end || *it != beta) return std::nullopt;
  return columns_.label_intents[static_cast<std::size_t>(
      it - columns_.label_betas.begin())];
}

IncrementalClassifier::State StateView::materialize() const {
  IncrementalClassifier::State state;
  state.entries_ingested = columns_.entries_ingested;
  state.decode_records_ok = columns_.decode_records_ok;
  state.decode_records_skipped = columns_.decode_records_skipped;
  state.asns_on_paths.assign(columns_.asns_on_paths.begin(),
                             columns_.asns_on_paths.end());
  state.dirty.assign(columns_.dirty.begin(), columns_.dirty.end());

  state.alphas.reserve(columns_.alpha_ids.size());
  for (std::size_t a = 0; a < columns_.alpha_ids.size(); ++a) {
    IncrementalClassifier::State::Alpha alpha;
    alpha.alpha = columns_.alpha_ids[a];
    const std::uint32_t b0 = columns_.alpha_beta_begin[a];
    const std::uint32_t b1 = columns_.alpha_beta_begin[a + 1];
    alpha.betas.reserve(b1 - b0);
    for (std::uint32_t b = b0; b < b1; ++b) {
      IncrementalClassifier::State::BetaEvidence evidence;
      evidence.beta = columns_.beta_ids[b];
      const auto on0 = static_cast<std::ptrdiff_t>(columns_.beta_on_begin[b]);
      const auto on1 =
          static_cast<std::ptrdiff_t>(columns_.beta_on_begin[b + 1]);
      const auto off0 = static_cast<std::ptrdiff_t>(columns_.beta_off_begin[b]);
      const auto off1 =
          static_cast<std::ptrdiff_t>(columns_.beta_off_begin[b + 1]);
      evidence.on_paths.assign(columns_.on_path_hashes.begin() + on0,
                               columns_.on_path_hashes.begin() + on1);
      evidence.off_paths.assign(columns_.off_path_hashes.begin() + off0,
                                columns_.off_path_hashes.begin() + off1);
      alpha.betas.push_back(std::move(evidence));
    }
    const std::uint32_t l0 = columns_.alpha_label_begin[a];
    const std::uint32_t l1 = columns_.alpha_label_begin[a + 1];
    alpha.labels.reserve(l1 - l0);
    for (std::uint32_t l = l0; l < l1; ++l)
      alpha.labels.emplace_back(columns_.label_betas[l],
                                columns_.label_intents[l]);
    state.alphas.push_back(std::move(alpha));
  }
  return state;
}

bgp::PathTable StateView::materialize_paths() const {
  return bgp::PathTable::from_columns(columns_.paths);
}

}  // namespace bgpintent::core
