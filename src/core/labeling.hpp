// Count-based cluster labeling shared by every classifier variant.
//
// The decision logic of §5.2 only ever consumes the *sizes* of a
// community's on-path / off-path unique-path sets: gap-cluster the betas,
// then label each cluster pure-on / pure-off / by ratio.  Batch classify()
// feeds it CommunityStats counts, IncrementalClassifier feeds it hash-set
// sizes, and the sliding-window classifier (src/stream/) feeds it
// refcounted window counts — all three call this one function, which is
// what makes "windowed labels == batch labels" hold by construction
// instead of by parallel maintenance of three copies of the ratio rule.
//
// Callers apply the alpha-level exclusions (public 16-bit ASN, alpha on
// any path) *before* calling: an excluded alpha emits no labels at all.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/classifier.hpp"
#include "core/clustering.hpp"

namespace bgpintent::core {

/// One community's evidence, reduced to unique-path counts.
struct BetaCounts {
  std::uint16_t beta = 0;
  std::size_t on_paths = 0;   ///< unique paths with alpha on-path
  std::size_t off_paths = 0;  ///< unique paths with alpha off-path

  friend bool operator==(const BetaCounts&, const BetaCounts&) = default;
};

/// Labels every beta of one alpha from counts alone.  `betas` must be
/// sorted ascending by beta and deduplicated; `emit(beta, intent)` is
/// called once per beta in cluster order (which is ascending beta order).
/// The arithmetic — pooled and mean ratios, off count floored at 1 —
/// matches CommunityStats::on_off_ratio() and classify() bit for bit.
template <typename Emit>
void label_alpha_counts(std::uint16_t alpha, std::span<const BetaCounts> betas,
                        const ClassifierConfig& config, Emit&& emit) {
  std::vector<std::uint16_t> values;
  values.reserve(betas.size());
  for (const BetaCounts& counts : betas) values.push_back(counts.beta);

  // gap_cluster partitions the sorted betas in order, so cluster members
  // walk `betas` front to back — no per-beta search.
  std::size_t next = 0;
  for (const Cluster& cluster : gap_cluster(alpha, values, config.min_gap)) {
    bool pure_on = true;
    bool pure_off = true;
    std::size_t pooled_on = 0;
    std::size_t pooled_off = 0;
    double ratio_sum = 0.0;
    for (std::size_t member = 0; member < cluster.betas.size(); ++member) {
      const BetaCounts& counts = betas[next++];
      pooled_on += counts.on_paths;
      pooled_off += counts.off_paths;
      if (counts.off_paths != 0) pure_on = false;
      if (counts.on_paths != 0) pure_off = false;
      ratio_sum += static_cast<double>(counts.on_paths) /
                   static_cast<double>(counts.off_paths == 0
                                           ? std::size_t{1}
                                           : counts.off_paths);
    }
    Intent intent;
    if (pure_on) {
      intent = Intent::kInformation;
    } else if (pure_off) {
      intent = Intent::kAction;
    } else {
      const double ratio =
          config.mean_of_ratios
              ? ratio_sum / static_cast<double>(cluster.size())
              : static_cast<double>(pooled_on) /
                    static_cast<double>(pooled_off == 0 ? std::size_t{1}
                                                        : pooled_off);
      intent = ratio >= config.ratio_threshold ? Intent::kInformation
                                               : Intent::kAction;
    }
    for (const std::uint16_t beta : cluster.betas) emit(beta, intent);
  }
}

}  // namespace bgpintent::core
