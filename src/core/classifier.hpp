// The paper's coarse-grained intent classifier (§5.2).
//
// For every observed AS alpha: cluster its observed betas (gap clustering),
// compute each cluster's on-path:off-path ratio (mean of its members'
// ratios), and label the cluster — and every community in it — as
//
//   information  if never observed off-path, or ratio >= threshold (160:1)
//   action       if never observed on-path, or ratio < threshold
//
// Exclusions (kUnclassified): alphas that are not public 16-bit ASNs, and
// alphas that never appear in any AS path (transparent IXP route servers).
//
// An alternative classifier over the same clusters uses the customer:peer
// feature the paper evaluates and rejects in Fig. 7.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/clustering.hpp"
#include "core/observations.hpp"
#include "dict/intent.hpp"

namespace bgpintent::util {
class ThreadPool;
}

namespace bgpintent::core {

using dict::Intent;

struct ClassifierConfig {
  /// Gap-clustering parameter (Fig. 9; paper uses 140).
  std::uint32_t min_gap = 140;
  /// on:off ratio at or above which a cluster is information (Fig. 6).
  double ratio_threshold = 160.0;
  /// Cluster feature: true averages per-community ratios (the paper's
  /// description), false pools on/off counts across the cluster.  We
  /// default to pooling: with the paper's 174M-tuple input the two are
  /// interchangeable, but at simulator scale the mean is capped by the
  /// number of vantage points and systematically undershoots wide
  /// information clusters (see DESIGN.md §5 and the eval_overall
  /// ablation).
  bool mean_of_ratios = false;
};

/// Why a community was not classified.
enum class Exclusion : std::uint8_t {
  kNone,
  kPrivateAlpha,    ///< alpha not a public 16-bit ASN
  kAlphaNeverOnPath ///< alpha (and siblings) absent from every AS path
};

/// One cluster with its inferred label.
struct ClusterInference {
  Cluster cluster;
  double mean_ratio = 0.0;    ///< mean of member on:off ratios
  double pooled_ratio = 0.0;  ///< pooled Σon : Σoff ratio
  bool pure_on = false;
  bool pure_off = false;
  Intent intent = Intent::kUnclassified;

  /// The feature value the classifier decided on.
  [[nodiscard]] double decision_ratio(bool mean_of_ratios) const noexcept {
    return mean_of_ratios ? mean_ratio : pooled_ratio;
  }

  friend bool operator==(const ClusterInference&,
                         const ClusterInference&) = default;
};

/// Full classification output.
struct InferenceResult {
  std::vector<ClusterInference> clusters;  ///< classified clusters only
  std::unordered_map<Community, Intent> labels;

  std::size_t information_count = 0;
  std::size_t action_count = 0;
  std::size_t excluded_private = 0;        ///< communities, not alphas
  std::size_t excluded_never_on_path = 0;

  /// Label for `community`; kUnclassified when not inferred.
  [[nodiscard]] Intent label_of(Community community) const noexcept;

  [[nodiscard]] std::size_t classified_count() const noexcept {
    return information_count + action_count;
  }
};

/// Runs clustering + ratio classification over every observed alpha.
/// Alphas are independent (each owns its beta ranges and ratios), so when
/// `pool` is non-null they are classified in parallel; the merged result —
/// including cluster order — is identical to the sequential one.
[[nodiscard]] InferenceResult classify(const ObservationIndex& observations,
                                       const ClassifierConfig& config = {},
                                       util::ThreadPool* pool = nullptr);

struct CustomerPeerConfig {
  std::uint32_t min_gap = 140;
  /// customer:peer ratio below which a cluster is information (paper: 5:1
  /// maximizes at ~80% accuracy).
  double ratio_threshold = 5.0;
};

/// The rejected alternative: classify clusters by customer:peer ratio.
/// Requires the index to have been built with a relationship dataset.
[[nodiscard]] InferenceResult classify_customer_peer(
    const ObservationIndex& observations, const CustomerPeerConfig& config = {});

}  // namespace bgpintent::core
