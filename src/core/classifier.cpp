#include "core/classifier.hpp"

#include <algorithm>
#include <numeric>

#include "bgp/asn.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::core {

Intent InferenceResult::label_of(Community community) const noexcept {
  const auto it = labels.find(community);
  return it == labels.end() ? Intent::kUnclassified : it->second;
}

namespace {

/// Classifies one alpha into `result`.  This is the parallel unit: an
/// alpha's clusters, ratios, and labels depend only on that alpha's stats,
/// so any partition of the alpha set yields the same per-alpha output.
/// `ratio_of` maps a community's stats to its feature ratio; `decide`
/// labels the cluster.  `beta_scratch` is a caller-owned buffer reused
/// across alphas so the hot loop does not allocate one vector per alpha.
template <typename RatioFn, typename DecideFn>
void classify_alpha(const ObservationIndex& observations, std::uint16_t alpha,
                    std::uint32_t min_gap, const RatioFn& ratio_of,
                    const DecideFn& decide,
                    std::vector<std::uint16_t>& beta_scratch,
                    InferenceResult& result) {
  const std::span<const CommunityStats> range =
      observations.alpha_range(alpha);
  if (!bgp::is_public_asn16(alpha)) {
    result.excluded_private += range.size();
    return;
  }
  if (!observations.alpha_on_any_path(alpha)) {
    result.excluded_never_on_path += range.size();
    return;
  }
  beta_scratch.clear();
  beta_scratch.reserve(range.size());
  for (const CommunityStats& stats : range)
    beta_scratch.push_back(stats.community.beta());
  // gap_cluster partitions the sorted betas in order, so the clusters'
  // members walk `range` front to back — no per-beta binary search.
  std::size_t next_stat = 0;
  for (Cluster& cluster : gap_cluster(alpha, beta_scratch, min_gap)) {
    ClusterInference inference;
    inference.pure_on = true;
    inference.pure_off = true;
    std::vector<double> ratios;
    std::size_t pooled_on = 0;
    std::size_t pooled_off = 0;
    for (std::size_t member = 0; member < cluster.betas.size(); ++member) {
      const CommunityStats* stats = &range[next_stat++];
      ratios.push_back(ratio_of(*stats));
      pooled_on += stats->on_path_paths;
      pooled_off += stats->off_path_paths;
      if (!stats->pure_on()) inference.pure_on = false;
      if (!stats->pure_off()) inference.pure_off = false;
    }
    inference.mean_ratio =
        ratios.empty()
            ? 0.0
            : std::accumulate(ratios.begin(), ratios.end(), 0.0) /
                  static_cast<double>(ratios.size());
    inference.pooled_ratio =
        static_cast<double>(pooled_on) /
        static_cast<double>(pooled_off == 0 ? 1 : pooled_off);
    inference.intent = decide(inference, pooled_on, pooled_off);
    for (const std::uint16_t beta : cluster.betas) {
      result.labels.emplace(Community(alpha, beta), inference.intent);
      if (inference.intent == Intent::kInformation)
        ++result.information_count;
      else
        ++result.action_count;
    }
    inference.cluster = std::move(cluster);
    result.clusters.push_back(std::move(inference));
  }
}

/// Shared driver for both classifiers.  Sequential when `pool` is null (or
/// trivial); otherwise splits the sorted alpha list into contiguous chunks,
/// classifies each chunk into a private InferenceResult on the pool, and
/// concatenates the partial results in chunk order — which reproduces the
/// sequential cluster order and counters exactly (see docs/THREADING.md).
template <typename RatioFn, typename DecideFn>
InferenceResult classify_impl(const ObservationIndex& observations,
                              std::uint32_t min_gap, RatioFn ratio_of,
                              DecideFn decide, util::ThreadPool* pool) {
  const std::vector<std::uint16_t> alphas = observations.alphas();

  if (pool == nullptr || pool->size() <= 1 || alphas.size() < 2) {
    InferenceResult result;
    std::vector<std::uint16_t> beta_scratch;
    for (const std::uint16_t alpha : alphas)
      classify_alpha(observations, alpha, min_gap, ratio_of, decide,
                     beta_scratch, result);
    return result;
  }

  const std::size_t chunk_count = std::min(
      alphas.size(), static_cast<std::size_t>(pool->size()) * 4);
  const std::size_t base = alphas.size() / chunk_count;
  const std::size_t extra = alphas.size() % chunk_count;
  std::vector<std::future<InferenceResult>> parts;
  parts.reserve(chunk_count);
  std::size_t begin = 0;
  for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) {
    const std::size_t end = begin + base + (chunk < extra ? 1 : 0);
    // By-reference captures are safe: every future is consumed below
    // before this function returns.
    parts.push_back(pool->submit([&, begin, end]() {
      InferenceResult part;
      std::vector<std::uint16_t> beta_scratch;
      for (std::size_t i = begin; i < end; ++i)
        classify_alpha(observations, alphas[i], min_gap, ratio_of, decide,
                       beta_scratch, part);
      return part;
    }));
    begin = end;
  }

  InferenceResult result;
  std::exception_ptr first_error;  // drain every future before rethrowing:
                                   // running tasks borrow our stack frame
  for (std::future<InferenceResult>& future : parts) {
    try {
      InferenceResult part = future.get();
      result.clusters.insert(result.clusters.end(),
                             std::make_move_iterator(part.clusters.begin()),
                             std::make_move_iterator(part.clusters.end()));
      result.labels.merge(part.labels);
      result.information_count += part.information_count;
      result.action_count += part.action_count;
      result.excluded_private += part.excluded_private;
      result.excluded_never_on_path += part.excluded_never_on_path;
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace

InferenceResult classify(const ObservationIndex& observations,
                         const ClassifierConfig& config,
                         util::ThreadPool* pool) {
  return classify_impl(
      observations, config.min_gap,
      [](const CommunityStats& stats) { return stats.on_off_ratio(); },
      [&config](const ClusterInference& inference, std::size_t /*pooled_on*/,
                std::size_t /*pooled_off*/) {
        if (inference.pure_on) return Intent::kInformation;
        if (inference.pure_off) return Intent::kAction;
        return inference.decision_ratio(config.mean_of_ratios) >=
                       config.ratio_threshold
                   ? Intent::kInformation
                   : Intent::kAction;
      },
      pool);
}

InferenceResult classify_customer_peer(const ObservationIndex& observations,
                                       const CustomerPeerConfig& config) {
  return classify_impl(
      observations, config.min_gap,
      [](const CommunityStats& stats) { return stats.customer_peer_ratio(); },
      [&config](const ClusterInference& inference, std::size_t /*pooled_on*/,
                std::size_t /*pooled_off*/) {
        return inference.mean_ratio < config.ratio_threshold
                   ? Intent::kInformation
                   : Intent::kAction;
      },
      /*pool=*/nullptr);
}

}  // namespace bgpintent::core
