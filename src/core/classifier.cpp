#include "core/classifier.hpp"

#include <algorithm>
#include <numeric>

#include "bgp/asn.hpp"

namespace bgpintent::core {

Intent InferenceResult::label_of(Community community) const noexcept {
  const auto it = labels.find(community);
  return it == labels.end() ? Intent::kUnclassified : it->second;
}

namespace {

/// Shared cluster walk for both classifiers.  `ratio_of` maps a community's
/// stats to its feature ratio; `decide` labels the cluster.
template <typename RatioFn, typename DecideFn>
InferenceResult classify_impl(const ObservationIndex& observations,
                              std::uint32_t min_gap, RatioFn ratio_of,
                              DecideFn decide) {
  InferenceResult result;
  for (const std::uint16_t alpha : observations.alphas()) {
    const auto betas = observations.observed_betas(alpha);
    if (!bgp::is_public_asn16(alpha)) {
      result.excluded_private += betas.size();
      continue;
    }
    if (!observations.alpha_on_any_path(alpha)) {
      result.excluded_never_on_path += betas.size();
      continue;
    }
    for (Cluster& cluster : gap_cluster(alpha, betas, min_gap)) {
      ClusterInference inference;
      inference.pure_on = true;
      inference.pure_off = true;
      std::vector<double> ratios;
      std::size_t pooled_on = 0;
      std::size_t pooled_off = 0;
      for (const std::uint16_t beta : cluster.betas) {
        const CommunityStats* stats =
            observations.find(Community(alpha, beta));
        // Every observed beta has stats by construction.
        ratios.push_back(ratio_of(*stats));
        pooled_on += stats->on_path_paths;
        pooled_off += stats->off_path_paths;
        if (!stats->pure_on()) inference.pure_on = false;
        if (!stats->pure_off()) inference.pure_off = false;
      }
      inference.mean_ratio =
          ratios.empty()
              ? 0.0
              : std::accumulate(ratios.begin(), ratios.end(), 0.0) /
                    static_cast<double>(ratios.size());
      inference.pooled_ratio =
          static_cast<double>(pooled_on) /
          static_cast<double>(pooled_off == 0 ? 1 : pooled_off);
      inference.intent = decide(inference, pooled_on, pooled_off);
      for (const std::uint16_t beta : cluster.betas) {
        result.labels.emplace(Community(alpha, beta), inference.intent);
        if (inference.intent == Intent::kInformation)
          ++result.information_count;
        else
          ++result.action_count;
      }
      inference.cluster = std::move(cluster);
      result.clusters.push_back(std::move(inference));
    }
  }
  return result;
}

}  // namespace

InferenceResult classify(const ObservationIndex& observations,
                         const ClassifierConfig& config) {
  return classify_impl(
      observations, config.min_gap,
      [](const CommunityStats& stats) { return stats.on_off_ratio(); },
      [&config](const ClusterInference& inference, std::size_t /*pooled_on*/,
                std::size_t /*pooled_off*/) {
        if (inference.pure_on) return Intent::kInformation;
        if (inference.pure_off) return Intent::kAction;
        return inference.decision_ratio(config.mean_of_ratios) >=
                       config.ratio_threshold
                   ? Intent::kInformation
                   : Intent::kAction;
      });
}

InferenceResult classify_customer_peer(const ObservationIndex& observations,
                                       const CustomerPeerConfig& config) {
  return classify_impl(
      observations, config.min_gap,
      [](const CommunityStats& stats) { return stats.customer_peer_ratio(); },
      [&config](const ClusterInference& inference, std::size_t /*pooled_on*/,
                std::size_t /*pooled_off*/) {
        return inference.mean_ratio < config.ratio_threshold
                   ? Intent::kInformation
                   : Intent::kAction;
      });
}

}  // namespace bgpintent::core
