#include "core/observations.hpp"

#include <algorithm>
#include <unordered_map>

namespace bgpintent::core {

namespace {

/// True when alpha or (optionally) one of its org siblings is in the path.
bool on_path(const bgp::AsPath& path, std::uint16_t alpha,
             const topo::OrgMap* orgs, bool sibling_aware) {
  if (path.contains(alpha)) return true;
  if (!sibling_aware || orgs == nullptr) return false;
  for (const Asn sibling : orgs->siblings(alpha))
    if (sibling != alpha && path.contains(sibling)) return true;
  return false;
}

}  // namespace

ObservationIndex ObservationIndex::build(
    std::span<const bgp::PathCommunityTuple> tuples, const topo::OrgMap* orgs,
    const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  ObservationIndex index;
  index.orgs_ = orgs;
  index.sibling_aware_ = config.sibling_aware;

  struct Accumulator {
    std::unordered_set<std::uint64_t> on_paths;
    std::unordered_set<std::uint64_t> off_paths;
    std::size_t customer_votes = 0;
    std::size_t peer_votes = 0;
    std::size_t provider_votes = 0;
  };
  std::unordered_map<Community, Accumulator> acc;
  std::unordered_set<std::uint64_t> unique_paths;

  for (const bgp::PathCommunityTuple& tuple : tuples) {
    const std::uint64_t path_hash = tuple.path.hash();
    unique_paths.insert(path_hash);
    for (const Asn asn : tuple.path.unique_asns())
      index.asns_on_paths_.insert(asn);

    Accumulator& a = acc[tuple.community];
    const std::uint16_t alpha = tuple.community.alpha();
    if (on_path(tuple.path, alpha, orgs, config.sibling_aware)) {
      if (a.on_paths.insert(path_hash).second && relationships != nullptr) {
        // First time this unique path is counted: record the relationship
        // between alpha and its successor toward the origin.
        if (const auto next = tuple.path.next_toward_origin(alpha)) {
          const auto rel = relationships->relationship(alpha, *next);
          if (rel == topo::RelFrom::kCustomer)
            ++a.customer_votes;
          else if (rel == topo::RelFrom::kPeer)
            ++a.peer_votes;
          else if (rel == topo::RelFrom::kProvider)
            ++a.provider_votes;
        }
      }
    } else {
      a.off_paths.insert(path_hash);
    }
  }

  index.unique_paths_ = unique_paths.size();
  index.stats_.reserve(acc.size());
  for (const auto& [community, a] : acc) {
    CommunityStats stats;
    stats.community = community;
    stats.on_path_paths = a.on_paths.size();
    stats.off_path_paths = a.off_paths.size();
    stats.customer_votes = a.customer_votes;
    stats.peer_votes = a.peer_votes;
    stats.provider_votes = a.provider_votes;
    index.stats_.push_back(stats);
  }
  std::sort(index.stats_.begin(), index.stats_.end(),
            [](const CommunityStats& x, const CommunityStats& y) {
              return x.community < y.community;
            });
  return index;
}

ObservationIndex ObservationIndex::from_entries(
    std::span<const bgp::RibEntry> entries, const topo::OrgMap* orgs,
    const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  std::vector<bgp::PathCommunityTuple> tuples;
  for (const bgp::RibEntry& entry : entries)
    for (const Community community : entry.route.communities)
      tuples.push_back(bgp::PathCommunityTuple{entry.route.path, community, 1});
  return build(tuples, orgs, relationships, config);
}

const CommunityStats* ObservationIndex::find(Community community) const noexcept {
  const auto it = std::lower_bound(
      stats_.begin(), stats_.end(), community,
      [](const CommunityStats& s, Community c) { return s.community < c; });
  if (it == stats_.end() || it->community != community) return nullptr;
  return &*it;
}

std::vector<std::uint16_t> ObservationIndex::observed_betas(
    std::uint16_t alpha) const {
  std::vector<std::uint16_t> betas;
  // stats_ is sorted by (alpha, beta); find the alpha range.
  const auto lo = std::lower_bound(
      stats_.begin(), stats_.end(), Community(alpha, 0),
      [](const CommunityStats& s, Community c) { return s.community < c; });
  for (auto it = lo; it != stats_.end() && it->community.alpha() == alpha; ++it)
    betas.push_back(it->community.beta());
  return betas;
}

std::vector<std::uint16_t> ObservationIndex::alphas() const {
  std::vector<std::uint16_t> out;
  for (const CommunityStats& stats : stats_)
    if (out.empty() || out.back() != stats.community.alpha())
      out.push_back(stats.community.alpha());
  return out;
}

bool ObservationIndex::alpha_on_any_path(std::uint16_t alpha) const {
  if (asns_on_paths_.contains(alpha)) return true;
  if (!sibling_aware_ || orgs_ == nullptr) return false;
  for (const Asn sibling : orgs_->siblings(alpha))
    if (asns_on_paths_.contains(sibling)) return true;
  return false;
}

}  // namespace bgpintent::core
