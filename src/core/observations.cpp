#include "core/observations.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/thread_pool.hpp"

namespace bgpintent::core {

namespace {

/// True when alpha or (optionally) one of its org siblings is in the path.
bool on_path(const bgp::AsPath& path, std::uint16_t alpha,
             const topo::OrgMap* orgs, bool sibling_aware) {
  if (path.contains(alpha)) return true;
  if (!sibling_aware || orgs == nullptr) return false;
  for (const Asn sibling : orgs->siblings(alpha))
    if (sibling != alpha && path.contains(sibling)) return true;
  return false;
}

struct Accumulator {
  std::unordered_set<std::uint64_t> on_paths;
  std::unordered_set<std::uint64_t> off_paths;
  std::size_t customer_votes = 0;
  std::size_t peer_votes = 0;
  std::size_t provider_votes = 0;
};

/// One shard's private accumulation state.  In the parallel build each
/// shard owns the alphas with `alpha % shard_count == shard`, so no
/// community appears in more than one shard; the sequential build is just
/// a single shard over everything.
struct Shard {
  std::unordered_map<Community, Accumulator> acc;
  std::unordered_set<std::uint64_t> unique_paths;
  std::unordered_set<Asn> asns_on_paths;
};

/// The per-tuple update, shared verbatim between the sequential and
/// parallel builds so they cannot diverge.
void accumulate(const bgp::PathCommunityTuple& tuple, const topo::OrgMap* orgs,
                const rel::RelationshipDataset* relationships,
                bool sibling_aware, Shard& shard) {
  const std::uint64_t path_hash = tuple.path.hash();
  shard.unique_paths.insert(path_hash);
  for (const Asn asn : tuple.path.unique_asns())
    shard.asns_on_paths.insert(asn);

  Accumulator& a = shard.acc[tuple.community];
  const std::uint16_t alpha = tuple.community.alpha();
  if (on_path(tuple.path, alpha, orgs, sibling_aware)) {
    if (a.on_paths.insert(path_hash).second && relationships != nullptr) {
      // First time this unique path is counted: record the relationship
      // between alpha and its successor toward the origin.
      if (const auto next = tuple.path.next_toward_origin(alpha)) {
        const auto rel = relationships->relationship(alpha, *next);
        if (rel == topo::RelFrom::kCustomer)
          ++a.customer_votes;
        else if (rel == topo::RelFrom::kPeer)
          ++a.peer_votes;
        else if (rel == topo::RelFrom::kProvider)
          ++a.provider_votes;
      }
    }
  } else {
    a.off_paths.insert(path_hash);
  }
}

}  // namespace

/// Merges shards into the final sorted index.  Deterministic: per-shard
/// stats are disjoint by construction, the stats vector is sorted, and the
/// unique-path / on-path-ASN sets are unions — none of it depends on shard
/// count or completion order.
struct ObservationBuilder {
  static ObservationIndex merge_shards(std::vector<Shard>& shards,
                                       const topo::OrgMap* orgs,
                                       const ObservationConfig& config) {
    ObservationIndex index;
    index.orgs_ = orgs;
    index.sibling_aware_ = config.sibling_aware;

    std::unordered_set<std::uint64_t> unique_paths;
    std::size_t community_total = 0;
    for (const Shard& shard : shards) community_total += shard.acc.size();
    index.stats_.reserve(community_total);
    for (Shard& shard : shards) {
      for (const auto& [community, a] : shard.acc) {
        CommunityStats stats;
        stats.community = community;
        stats.on_path_paths = a.on_paths.size();
        stats.off_path_paths = a.off_paths.size();
        stats.customer_votes = a.customer_votes;
        stats.peer_votes = a.peer_votes;
        stats.provider_votes = a.provider_votes;
        index.stats_.push_back(stats);
      }
      unique_paths.insert(shard.unique_paths.begin(), shard.unique_paths.end());
      index.asns_on_paths_.insert(shard.asns_on_paths.begin(),
                                  shard.asns_on_paths.end());
    }
    index.unique_paths_ = unique_paths.size();
    std::sort(index.stats_.begin(), index.stats_.end(),
              [](const CommunityStats& x, const CommunityStats& y) {
                return x.community < y.community;
              });
    return index;
  }
};

ObservationIndex ObservationIndex::build(
    std::span<const bgp::PathCommunityTuple> tuples, const topo::OrgMap* orgs,
    const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  std::vector<Shard> shards(1);
  for (const bgp::PathCommunityTuple& tuple : tuples)
    accumulate(tuple, orgs, relationships, config.sibling_aware, shards[0]);
  return ObservationBuilder::merge_shards(shards, orgs, config);
}

ObservationIndex ObservationIndex::build_parallel(
    std::span<const bgp::PathCommunityTuple> tuples, util::ThreadPool& pool,
    const topo::OrgMap* orgs, const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  if (pool.size() <= 1 || tuples.size() < 2)
    return build(tuples, orgs, relationships, config);

  // Oversubscribe shards 4x so the work-stealing pool can rebalance skewed
  // alphas; shard count does not affect the result.
  const std::size_t shard_count =
      std::min<std::size_t>(static_cast<std::size_t>(pool.size()) * 4, 256);

  // Bucket tuple indices by owning shard (cheap single pass) so each shard
  // task touches only its own tuples, in input order.
  std::vector<std::vector<std::size_t>> buckets(shard_count);
  for (std::size_t i = 0; i < tuples.size(); ++i)
    buckets[tuples[i].community.alpha() % shard_count].push_back(i);

  std::vector<Shard> shards(shard_count);
  pool.parallel_for(shard_count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s)
      for (const std::size_t i : buckets[s])
        accumulate(tuples[i], orgs, relationships, config.sibling_aware,
                   shards[s]);
  });
  return ObservationBuilder::merge_shards(shards, orgs, config);
}

ObservationIndex ObservationIndex::from_entries(
    std::span<const bgp::RibEntry> entries, const topo::OrgMap* orgs,
    const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  std::vector<bgp::PathCommunityTuple> tuples;
  for (const bgp::RibEntry& entry : entries)
    for (const Community community : entry.route.communities)
      tuples.push_back(bgp::PathCommunityTuple{entry.route.path, community, 1});
  return build(tuples, orgs, relationships, config);
}

const CommunityStats* ObservationIndex::find(Community community) const noexcept {
  const auto it = std::lower_bound(
      stats_.begin(), stats_.end(), community,
      [](const CommunityStats& s, Community c) { return s.community < c; });
  if (it == stats_.end() || it->community != community) return nullptr;
  return &*it;
}

std::vector<std::uint16_t> ObservationIndex::observed_betas(
    std::uint16_t alpha) const {
  std::vector<std::uint16_t> betas;
  // stats_ is sorted by (alpha, beta); find the alpha range.
  const auto lo = std::lower_bound(
      stats_.begin(), stats_.end(), Community(alpha, 0),
      [](const CommunityStats& s, Community c) { return s.community < c; });
  for (auto it = lo; it != stats_.end() && it->community.alpha() == alpha; ++it)
    betas.push_back(it->community.beta());
  return betas;
}

std::vector<std::uint16_t> ObservationIndex::alphas() const {
  std::vector<std::uint16_t> out;
  for (const CommunityStats& stats : stats_)
    if (out.empty() || out.back() != stats.community.alpha())
      out.push_back(stats.community.alpha());
  return out;
}

bool ObservationIndex::alpha_on_any_path(std::uint16_t alpha) const {
  if (asns_on_paths_.contains(alpha)) return true;
  if (!sibling_aware_ || orgs_ == nullptr) return false;
  for (const Asn sibling : orgs_->siblings(alpha))
    if (asns_on_paths_.contains(sibling)) return true;
  return false;
}

}  // namespace bgpintent::core
