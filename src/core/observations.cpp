#include "core/observations.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace bgpintent::core {

namespace {

/// True when alpha or (optionally) one of its org siblings is in the path.
bool on_path(const bgp::PathTable& paths, bgp::PathId id, std::uint16_t alpha,
             const topo::OrgMap* orgs, bool sibling_aware) {
  if (paths.contains(id, alpha)) return true;
  if (!sibling_aware || orgs == nullptr) return false;
  for (const Asn sibling : orgs->siblings(alpha))
    if (sibling != alpha && paths.contains(id, sibling)) return true;
  return false;
}

/// A tuple packed into one 64-bit key: community wire value (alpha:beta)
/// in the high half, PathId in the low half.  Sorting the packed records
/// groups them by alpha, then beta, then path — which is the entire
/// accumulation data structure: unique (community, path) pairs fall out of
/// sort+unique by adjacency, with zero hash tables on the hot path.
[[nodiscard]] constexpr std::uint64_t pack(const bgp::InternedTuple& t) noexcept {
  return static_cast<std::uint64_t>(t.community.wire()) << 32 | t.path;
}
[[nodiscard]] constexpr std::uint16_t packed_alpha(std::uint64_t rec) noexcept {
  return static_cast<std::uint16_t>(rec >> 48);
}
[[nodiscard]] constexpr std::uint32_t packed_wire(std::uint64_t rec) noexcept {
  return static_cast<std::uint32_t>(rec >> 32);
}
[[nodiscard]] constexpr bgp::PathId packed_path(std::uint64_t rec) noexcept {
  return static_cast<bgp::PathId>(rec);
}

/// One shard's accumulation state: the packed records it owns and, after
/// finalize_shard, its per-community stats.  In the parallel build each
/// shard owns the alphas with `alpha % shard_count == shard`, so no
/// community appears in more than one shard; the sequential build is just
/// a single shard over everything.
struct Shard {
  std::vector<std::uint64_t> records;
  std::vector<CommunityStats> stats;  // sorted by community (sort order of
                                      // records), disjoint across shards
};

/// Sorts and deduplicates one shard's records, resolves the (path, alpha)
/// facts once per alpha group, and counts each community's unique on/off
/// paths by walking its contiguous run.  Shared verbatim between the
/// sequential and parallel builds so they cannot diverge.
///
/// Because PathIds are dense, the per-(path, alpha) memo is three flat
/// arrays indexed by id, invalidated per alpha by bumping an epoch stamp —
/// resolving a fact is one array probe, no hashing, no second sort.  The
/// arrays cost ~6 bytes per interned path per concurrently running shard
/// task (bounded by the pool's worker count, not the shard count).
void finalize_shard(const bgp::PathTable& paths, Shard& shard,
                    const topo::OrgMap* orgs,
                    const rel::RelationshipDataset* relationships,
                    bool sibling_aware) {
  constexpr std::uint8_t kNoVote = 0xff;

  std::vector<std::uint64_t>& recs = shard.records;
  std::sort(recs.begin(), recs.end());
  recs.erase(std::unique(recs.begin(), recs.end()), recs.end());

  std::vector<std::uint32_t> fact_epoch(paths.size(), 0);
  std::vector<std::uint8_t> fact_on(paths.size());
  std::vector<std::uint8_t> fact_vote(paths.size());
  std::uint32_t epoch = 0;

  std::size_t i = 0;
  while (i < recs.size()) {
    const std::uint16_t alpha = packed_alpha(recs[i]);
    std::size_t alpha_end = i;
    while (alpha_end < recs.size() && packed_alpha(recs[alpha_end]) == alpha)
      ++alpha_end;
    ++epoch;  // drops every memoized fact of the previous alpha

    // Each community is a contiguous run of strictly ascending ids; a path
    // repeated across the alpha's betas hits the memo after its first
    // resolution.
    std::size_t j = i;
    while (j < alpha_end) {
      const std::uint32_t wire = packed_wire(recs[j]);
      std::size_t run_end = j;
      while (run_end < alpha_end && packed_wire(recs[run_end]) == wire)
        ++run_end;

      CommunityStats stats;
      stats.community = Community::from_wire(wire);
      for (std::size_t k = j; k < run_end; ++k) {
        const bgp::PathId id = packed_path(recs[k]);
        if (fact_epoch[id] != epoch) {
          fact_epoch[id] = epoch;
          fact_on[id] = on_path(paths, id, alpha, orgs, sibling_aware) ? 1 : 0;
          fact_vote[id] = kNoVote;
          if (fact_on[id] != 0 && relationships != nullptr)
            if (const auto next = paths.next_toward_origin(id, alpha))
              if (const auto rel = relationships->relationship(alpha, *next))
                fact_vote[id] = static_cast<std::uint8_t>(*rel);
        }
        if (fact_on[id] != 0) {
          ++stats.on_path_paths;
          switch (fact_vote[id]) {
            case static_cast<std::uint8_t>(topo::RelFrom::kCustomer):
              ++stats.customer_votes;
              break;
            case static_cast<std::uint8_t>(topo::RelFrom::kPeer):
              ++stats.peer_votes;
              break;
            case static_cast<std::uint8_t>(topo::RelFrom::kProvider):
              ++stats.provider_votes;
              break;
            default:  // kNoVote or kSibling: no vote recorded
              break;
          }
        } else {
          ++stats.off_path_paths;
        }
      }
      shard.stats.push_back(stats);
      j = run_end;
    }
    i = alpha_end;
  }
}

}  // namespace

/// Merges finalized shards into the index.  Deterministic: per-shard stats
/// are disjoint by construction and get one global sort; the unique-path /
/// on-path-ASN accounting walks a sorted id list — none of it depends on
/// shard count or completion order.
struct ObservationBuilder {
  static ObservationIndex merge_shards(
      const bgp::PathTable& paths, std::span<const bgp::InternedTuple> tuples,
      std::vector<Shard>& shards, const topo::OrgMap* orgs,
      const ObservationConfig& config) {
    ObservationIndex index;
    index.orgs_ = orgs;
    index.sibling_aware_ = config.sibling_aware;

    std::size_t community_total = 0;
    for (const Shard& shard : shards) community_total += shard.stats.size();
    index.stats_.reserve(community_total);
    for (Shard& shard : shards)
      index.stats_.insert(index.stats_.end(), shard.stats.begin(),
                          shard.stats.end());
    std::sort(index.stats_.begin(), index.stats_.end(),
              [](const CommunityStats& x, const CommunityStats& y) {
                return x.community < y.community;
              });

    // Unique paths and the ASN-on-path universe come from the tuple
    // stream, not the table: a table entry no tuple references (possible
    // with a shared/larger table) must not count.  Dense ids turn the
    // dedup into a bitvector instead of a sort.
    std::vector<bool> seen(paths.size(), false);
    for (const bgp::InternedTuple& tuple : tuples) seen[tuple.path] = true;
    for (bgp::PathId id = 0; id < paths.size(); ++id) {
      if (!seen[id]) continue;
      ++index.unique_paths_;
      const std::span<const Asn> uniq = paths.unique_asns(id);
      index.asns_on_paths_.insert(uniq.begin(), uniq.end());
    }
    return index;
  }
};

ObservationIndex ObservationIndex::build_interned(
    const bgp::PathTable& paths, std::span<const bgp::InternedTuple> tuples,
    const topo::OrgMap* orgs, const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  std::vector<Shard> shards(1);
  shards[0].records.reserve(tuples.size());
  for (const bgp::InternedTuple& tuple : tuples)
    shards[0].records.push_back(pack(tuple));
  finalize_shard(paths, shards[0], orgs, relationships, config.sibling_aware);
  return ObservationBuilder::merge_shards(paths, tuples, shards, orgs, config);
}

ObservationIndex ObservationIndex::build_parallel_interned(
    const bgp::PathTable& paths, std::span<const bgp::InternedTuple> tuples,
    util::ThreadPool& pool, const topo::OrgMap* orgs,
    const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  if (pool.size() <= 1 || tuples.size() < 2)
    return build_interned(paths, tuples, orgs, relationships, config);

  // Oversubscribe shards 4x so the work-stealing pool can rebalance skewed
  // alphas; shard count does not affect the result.
  const std::size_t shard_count =
      std::min<std::size_t>(static_cast<std::size_t>(pool.size()) * 4, 256);

  // Bucket the packed records by owning shard (cheap single pass); each
  // shard task then sorts and counts only its own communities.
  std::vector<Shard> shards(shard_count);
  for (const bgp::InternedTuple& tuple : tuples)
    shards[tuple.community.alpha() % shard_count].records.push_back(
        pack(tuple));

  pool.parallel_for(shard_count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s)
      finalize_shard(paths, shards[s], orgs, relationships,
                     config.sibling_aware);
  });
  return ObservationBuilder::merge_shards(paths, tuples, shards, orgs, config);
}

ObservationIndex ObservationIndex::build(
    std::span<const bgp::PathCommunityTuple> tuples, const topo::OrgMap* orgs,
    const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  bgp::PathTable paths;
  const std::vector<bgp::InternedTuple> interned =
      bgp::intern_tuples(paths, tuples);
  return build_interned(paths, interned, orgs, relationships, config);
}

ObservationIndex ObservationIndex::build_parallel(
    std::span<const bgp::PathCommunityTuple> tuples, util::ThreadPool& pool,
    const topo::OrgMap* orgs, const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  bgp::PathTable paths;
  const std::vector<bgp::InternedTuple> interned =
      bgp::intern_tuples(paths, tuples);
  return build_parallel_interned(paths, interned, pool, orgs, relationships,
                                 config);
}

ObservationIndex ObservationIndex::from_entries(
    std::span<const bgp::RibEntry> entries, const topo::OrgMap* orgs,
    const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  bgp::PathTable paths;
  const std::vector<bgp::InternedTuple> tuples =
      bgp::intern_entries(paths, entries);
  return build_interned(paths, tuples, orgs, relationships, config);
}

const CommunityStats* ObservationIndex::find(Community community) const noexcept {
  const auto it = std::lower_bound(
      stats_.begin(), stats_.end(), community,
      [](const CommunityStats& s, Community c) { return s.community < c; });
  if (it == stats_.end() || it->community != community) return nullptr;
  return &*it;
}

std::span<const CommunityStats> ObservationIndex::alpha_range(
    std::uint16_t alpha) const noexcept {
  // stats_ is sorted by (alpha, beta); the alpha's stats are the run in
  // [alpha:0, alpha+1:0).
  const auto lo = std::lower_bound(
      stats_.begin(), stats_.end(), Community(alpha, 0),
      [](const CommunityStats& s, Community c) { return s.community < c; });
  auto hi = lo;
  while (hi != stats_.end() && hi->community.alpha() == alpha) ++hi;
  return {lo, hi};
}

std::vector<std::uint16_t> ObservationIndex::observed_betas(
    std::uint16_t alpha) const {
  std::vector<std::uint16_t> betas;
  const std::span<const CommunityStats> range = alpha_range(alpha);
  betas.reserve(range.size());
  for (const CommunityStats& stats : range)
    betas.push_back(stats.community.beta());
  return betas;
}

std::vector<std::uint16_t> ObservationIndex::alphas() const {
  std::vector<std::uint16_t> out;
  for (const CommunityStats& stats : stats_)
    if (out.empty() || out.back() != stats.community.alpha())
      out.push_back(stats.community.alpha());
  return out;
}

bool ObservationIndex::alpha_on_any_path(std::uint16_t alpha) const {
  if (asns_on_paths_.contains(alpha)) return true;
  if (!sibling_aware_ || orgs_ == nullptr) return false;
  for (const Asn sibling : orgs_->siblings(alpha))
    if (asns_on_paths_.contains(sibling)) return true;
  return false;
}

}  // namespace bgpintent::core
