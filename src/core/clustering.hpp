// Gap clustering of community beta values (§5.2, Fig. 9).
//
// Operators number similar-purpose communities contiguously; the method
// approximates those blocks by splitting the sorted observed beta values of
// one AS wherever the gap between adjacent values exceeds `min_gap`.
// min_gap = 0 degenerates to per-community singletons — the "no
// clustering" baseline of Fig. 9 (73.7% accuracy in the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bgpintent::core {

/// A contiguous block of observed beta values of one AS.
struct Cluster {
  std::uint16_t alpha = 0;
  std::vector<std::uint16_t> betas;  ///< ascending, non-empty

  [[nodiscard]] std::uint16_t lo() const noexcept { return betas.front(); }
  [[nodiscard]] std::uint16_t hi() const noexcept { return betas.back(); }
  [[nodiscard]] std::size_t size() const noexcept { return betas.size(); }

  friend bool operator==(const Cluster&, const Cluster&) = default;
};

/// Splits sorted, deduplicated `betas` into clusters: adjacent values stay
/// together while (next - prev) <= min_gap.  Input order is preserved;
/// passing unsorted input is a precondition violation.
[[nodiscard]] std::vector<Cluster> gap_cluster(
    std::uint16_t alpha, std::span<const std::uint16_t> betas,
    std::uint32_t min_gap);

}  // namespace bgpintent::core
