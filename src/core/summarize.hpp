// Summarizing inferences into dictionary form.
//
// The paper frames coarse intent classification as "a first step towards
// fine-grained inference of community meanings" and publishes its
// inferences as data.  This module turns an InferenceResult into exactly
// that artifact: per-AS dictionary entries (beta-range patterns labeled
// action/information) that can be saved, diffed against operator-published
// dictionaries, and loaded back by dict::DictionaryStore.
#pragma once

#include <iosfwd>

#include "core/classifier.hpp"
#include "dict/dictionary.hpp"

namespace bgpintent::core {

struct SummaryConfig {
  /// Minimum cluster size to emit a range pattern; smaller clusters are
  /// emitted as exact-value patterns.
  std::size_t min_range_size = 2;
  /// Skip clusters with fewer total path observations than this.
  std::size_t min_observations = 1;
};

/// One emitted dictionary row.
struct InferredEntry {
  dict::CommunityPattern pattern;
  Intent intent = Intent::kUnclassified;
  std::size_t member_count = 0;
  std::size_t observations = 0;  ///< total unique paths across members
  double ratio = 0.0;            ///< pooled on:off ratio of the cluster
};

/// Converts classified clusters into dictionary rows (one per cluster,
/// range patterns "lo-hi"), ascending by (alpha, lo).
[[nodiscard]] std::vector<InferredEntry> summarize(
    const ObservationIndex& observations, const InferenceResult& inference,
    const SummaryConfig& config = {});

/// Builds a loadable DictionaryStore from the summary.  Action clusters map
/// to Category::kOtherAction, information clusters to kOtherInfo — the
/// coarse labels this method can justify.
[[nodiscard]] dict::DictionaryStore to_dictionary(
    const std::vector<InferredEntry>& entries);

/// Writes the summary as the dict text format with ratio/support comments.
void write_summary(std::ostream& out, const std::vector<InferredEntry>& entries);

/// Compares an inferred dictionary against a reference (e.g. operator
/// published): per-community agreement over the communities both cover.
struct DictionaryDiff {
  std::size_t both_cover = 0;
  std::size_t agree = 0;
  std::size_t inferred_only = 0;   ///< covered by us, not by the reference
  std::size_t reference_only = 0;  ///< covered by the reference, not by us

  [[nodiscard]] double agreement() const noexcept {
    return both_cover == 0
               ? 0.0
               : static_cast<double>(agree) / static_cast<double>(both_cover);
  }
};

/// Diffs coarse intent over every community observed in `observations`.
[[nodiscard]] DictionaryDiff diff_dictionaries(
    const ObservationIndex& observations, const dict::DictionaryStore& inferred,
    const dict::DictionaryStore& reference);

}  // namespace bgpintent::core
