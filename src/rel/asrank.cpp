#include "rel/asrank.hpp"

#include <algorithm>
#include <unordered_set>

namespace bgpintent::rel {

namespace {

std::uint64_t pair_key(Asn a, Asn b) noexcept {
  const Asn lo = std::min(a, b);
  const Asn hi = std::max(a, b);
  return static_cast<std::uint64_t>(lo) << 32 | hi;
}

}  // namespace

std::unordered_map<Asn, std::size_t> transit_degrees(
    const std::vector<bgp::AsPath>& paths) {
  std::unordered_map<Asn, std::unordered_set<Asn>> transit_neighbors;
  for (const bgp::AsPath& path : paths) {
    const auto asns = path.unique_asns();
    for (std::size_t i = 1; i + 1 < asns.size(); ++i) {
      transit_neighbors[asns[i]].insert(asns[i - 1]);
      transit_neighbors[asns[i]].insert(asns[i + 1]);
    }
  }
  std::unordered_map<Asn, std::size_t> degrees;
  for (const auto& [asn, neighbors] : transit_neighbors)
    degrees[asn] = neighbors.size();
  return degrees;
}

RelationshipDataset infer_relationships(const std::vector<bgp::AsPath>& paths,
                                        const InferenceConfig& config) {
  const auto degrees = transit_degrees(paths);
  auto degree_of = [&degrees](Asn asn) -> std::size_t {
    const auto it = degrees.find(asn);
    return it == degrees.end() ? 0 : it->second;
  };

  std::size_t max_degree = 0;
  for (const auto& [asn, degree] : degrees)
    max_degree = std::max(max_degree, degree);

  // Clique candidates: transit degree close to the maximum.
  std::unordered_set<Asn> clique;
  for (const auto& [asn, degree] : degrees)
    if (degree >= config.min_clique_degree &&
        static_cast<double>(degree) >=
            config.clique_fraction * static_cast<double>(max_degree))
      clique.insert(asn);

  // Orient each observed adjacency by walking paths over their top AS.
  // votes[pair] = (first-of-key provider count, second-of-key provider count).
  std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>> votes;
  auto vote = [&votes](Asn provider, Asn customer) {
    auto& v = votes[pair_key(provider, customer)];
    if (provider < customer)
      ++v.first;
    else
      ++v.second;
  };

  for (const bgp::AsPath& path : paths) {
    const auto asns = path.unique_asns();
    if (asns.size() < 2) continue;
    // Index of the highest-transit-degree AS ("top of the hill").
    std::size_t top = 0;
    for (std::size_t i = 1; i < asns.size(); ++i)
      if (degree_of(asns[i]) > degree_of(asns[top])) top = i;
    for (std::size_t i = 0; i + 1 < asns.size(); ++i) {
      // Ensure every adjacency has a vote entry even if orientation is
      // suppressed below (clique-internal links).
      votes.try_emplace(pair_key(asns[i], asns[i + 1]),
                        std::make_pair(std::size_t{0}, std::size_t{0}));
      if (clique.contains(asns[i]) && clique.contains(asns[i + 1]))
        continue;  // clique-internal: settled as p2p later
      if (degree_of(asns[i]) == 0 && degree_of(asns[i + 1]) == 0)
        continue;  // no transit evidence on either side: leave as p2p
      if (i < top)
        vote(asns[i + 1], asns[i]);  // climbing toward top: right provides left
      else
        vote(asns[i], asns[i + 1]);  // descending to origin: left provides right
    }
  }

  RelationshipDataset out;
  for (const auto& [key, tally] : votes) {
    const Asn lo = static_cast<Asn>(key >> 32);
    const Asn hi = static_cast<Asn>(key & 0xffffffffu);
    if (clique.contains(lo) && clique.contains(hi)) {
      out.set_p2p(lo, hi);
      continue;
    }
    const auto [lo_provider, hi_provider] = tally;
    const std::size_t total = lo_provider + hi_provider;
    if (total == 0) {
      out.set_p2p(lo, hi);
      continue;
    }
    const double margin =
        static_cast<double>(
            std::max(lo_provider, hi_provider) -
            std::min(lo_provider, hi_provider)) /
        static_cast<double>(total);
    const double deg_lo = static_cast<double>(std::max<std::size_t>(
        degree_of(lo), 1));
    const double deg_hi = static_cast<double>(std::max<std::size_t>(
        degree_of(hi), 1));
    const double degree_ratio = std::max(deg_lo, deg_hi) /
                                std::min(deg_lo, deg_hi);
    if (margin < config.p2p_vote_margin &&
        degree_ratio < config.p2p_degree_ratio) {
      out.set_p2p(lo, hi);
    } else if (lo_provider >= hi_provider) {
      out.set_p2c(lo, hi);
    } else {
      out.set_p2c(hi, lo);
    }
  }
  return out;
}

}  // namespace bgpintent::rel
