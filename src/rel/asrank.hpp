// AS relationship inference from observed AS paths.
//
// A compact implementation of the classic transit-degree approach
// (Gao 2001; Luckie et al. 2013): rank ASes by transit degree, infer the
// clique of transit-free networks, orient every observed adjacency as p2c
// by walking each path over its "top" AS, and classify ambiguous or
// clique-internal links as p2p.
//
// The paper consumes CAIDA's published inferences; this module produces an
// equivalent dataset directly from the same BGP paths the rest of the
// pipeline sees.
#pragma once

#include <vector>

#include "bgp/aspath.hpp"
#include "rel/dataset.hpp"

namespace bgpintent::rel {

struct InferenceConfig {
  /// Transit degree >= this fraction of the maximum marks clique candidates.
  double clique_fraction = 0.4;
  /// Clique candidates additionally need at least this transit degree
  /// (guards against degenerate cliques in sparse inputs).
  std::size_t min_clique_degree = 5;
  /// Vote asymmetry below this fraction classifies a link as p2p.
  double p2p_vote_margin = 0.34;
  /// Transit-degree ratio below which near-equal ASes can be peers.
  double p2p_degree_ratio = 4.0;
};

/// Distinct-neighbor transit degree of every AS in `paths`: the number of
/// distinct ASes seen adjacent to it while it transits (appears between
/// two other ASes).  Origin/leaf positions do not contribute.
[[nodiscard]] std::unordered_map<bgp::Asn, std::size_t> transit_degrees(
    const std::vector<bgp::AsPath>& paths);

/// Infers relationships for every adjacency observed in `paths`.
[[nodiscard]] RelationshipDataset infer_relationships(
    const std::vector<bgp::AsPath>& paths, const InferenceConfig& config = {});

}  // namespace bgpintent::rel
