#include "rel/valley_free.hpp"

namespace bgpintent::rel {

std::string_view to_string(PathVerdict verdict) noexcept {
  switch (verdict) {
    case PathVerdict::kValleyFree: return "valley_free";
    case PathVerdict::kValley: return "valley";
    case PathVerdict::kMultiplePeaks: return "multiple_peaks";
    case PathVerdict::kUnknownLink: return "unknown_link";
    case PathVerdict::kTrivial: return "trivial";
  }
  return "?";
}

PathVerdict check_valley_free(const bgp::AsPath& path,
                              const RelationshipDataset& relationships) {
  const auto asns = path.unique_asns();
  if (asns.size() < 2) return PathVerdict::kTrivial;

  // Read from origin to collector: asns[n-1] ... asns[0].  The route was
  // exported hop by hop; the edge (asns[i+1] -> asns[i]) means asns[i]
  // learned the route from asns[i+1].
  // Phases: 0 = climbing (customer->provider exports), after a peer edge
  // or a downhill edge we may only descend (provider->customer).
  bool descending = false;
  bool peer_seen = false;
  for (std::size_t i = asns.size() - 1; i > 0; --i) {
    const bgp::Asn from = asns[i];      // sender (closer to origin)
    const bgp::Asn to = asns[i - 1];    // receiver (closer to collector)
    const auto rel = relationships.relationship(from, to);
    if (!rel) return PathVerdict::kUnknownLink;
    switch (*rel) {
      case topo::RelFrom::kProvider:
        // Receiver is the sender's provider: climbing.
        if (descending) return PathVerdict::kValley;
        break;
      case topo::RelFrom::kPeer:
        if (peer_seen) return PathVerdict::kMultiplePeaks;
        if (descending) return PathVerdict::kValley;
        peer_seen = true;
        descending = true;  // after the peak only downhill is allowed
        break;
      case topo::RelFrom::kCustomer:
        // Receiver is the sender's customer: descending.
        descending = true;
        break;
      case topo::RelFrom::kSibling:
        break;  // neutral
    }
  }
  return PathVerdict::kValleyFree;
}

ValleyFreeReport check_paths(const std::vector<bgp::AsPath>& paths,
                             const RelationshipDataset& relationships) {
  ValleyFreeReport report;
  for (const bgp::AsPath& path : paths) {
    ++report.total;
    switch (check_valley_free(path, relationships)) {
      case PathVerdict::kValleyFree: ++report.valley_free; break;
      case PathVerdict::kValley: ++report.valleys; break;
      case PathVerdict::kMultiplePeaks: ++report.multiple_peaks; break;
      case PathVerdict::kUnknownLink: ++report.unknown_links; break;
      case PathVerdict::kTrivial: ++report.trivial; break;
    }
  }
  return report;
}

}  // namespace bgpintent::rel
