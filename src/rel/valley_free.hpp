// Valley-free (Gao-Rexford) path validation.
//
// Given a relationship dataset, an AS path is valley-free iff, read from
// the origin toward the collector, it climbs customer->provider edges,
// crosses at most one peer edge at the top, and then descends
// provider->customer edges.  Violations in observed data expose either
// route leaks or relationship-inference errors; the checker reports both a
// verdict and the reason.
#pragma once

#include <string>

#include "bgp/aspath.hpp"
#include "rel/dataset.hpp"

namespace bgpintent::rel {

enum class PathVerdict : std::uint8_t {
  kValleyFree,       ///< conforms to Gao-Rexford export rules
  kValley,           ///< descends and climbs again (route leak shape)
  kMultiplePeaks,    ///< more than one peer edge at the top
  kUnknownLink,      ///< an adjacency missing from the dataset
  kTrivial,          ///< fewer than 2 distinct ASes
};

[[nodiscard]] std::string_view to_string(PathVerdict verdict) noexcept;

/// Classifies one path against `relationships`.  Sibling links (if the
/// dataset had them) are treated as neutral; prepends are collapsed.
[[nodiscard]] PathVerdict check_valley_free(
    const bgp::AsPath& path, const RelationshipDataset& relationships);

/// Aggregate over many paths.
struct ValleyFreeReport {
  std::size_t total = 0;
  std::size_t valley_free = 0;
  std::size_t valleys = 0;
  std::size_t multiple_peaks = 0;
  std::size_t unknown_links = 0;
  std::size_t trivial = 0;

  [[nodiscard]] double valley_free_fraction() const noexcept {
    const std::size_t judged = total - unknown_links - trivial;
    return judged == 0 ? 0.0
                       : static_cast<double>(valley_free) /
                             static_cast<double>(judged);
  }
};

[[nodiscard]] ValleyFreeReport check_paths(
    const std::vector<bgp::AsPath>& paths,
    const RelationshipDataset& relationships);

}  // namespace bgpintent::rel
