#include "rel/dataset.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "util/strings.hpp"

namespace bgpintent::rel {

std::uint64_t RelationshipDataset::key(Asn a, Asn b) noexcept {
  const Asn lo = std::min(a, b);
  const Asn hi = std::max(a, b);
  return static_cast<std::uint64_t>(lo) << 32 | hi;
}

void RelationshipDataset::set_p2c(Asn provider, Asn customer) {
  links_[key(provider, customer)] = provider < customer ? +1 : -1;
}

void RelationshipDataset::set_p2p(Asn a, Asn b) { links_[key(a, b)] = 0; }

std::optional<RelFrom> RelationshipDataset::relationship(Asn a,
                                                         Asn b) const noexcept {
  const auto it = links_.find(key(a, b));
  if (it == links_.end()) return std::nullopt;
  if (it->second == 0) return RelFrom::kPeer;
  const Asn provider = it->second > 0 ? std::min(a, b) : std::max(a, b);
  return provider == a ? RelFrom::kCustomer   // b is a's customer
                       : RelFrom::kProvider;  // b is a's provider
}

std::size_t RelationshipDataset::p2c_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [k, v] : links_)
    if (v != 0) ++n;
  return n;
}

std::size_t RelationshipDataset::p2p_count() const noexcept {
  return links_.size() - p2c_count();
}

std::vector<RelationshipDataset::Link> RelationshipDataset::all_links() const {
  std::vector<Link> out;
  out.reserve(links_.size());
  for (const auto& [k, v] : links_) {
    const Asn lo = static_cast<Asn>(k >> 32);
    const Asn hi = static_cast<Asn>(k & 0xffffffffu);
    if (v == 0)
      out.push_back(Link{lo, hi, false});
    else if (v > 0)
      out.push_back(Link{lo, hi, true});
    else
      out.push_back(Link{hi, lo, true});
  }
  std::sort(out.begin(), out.end(), [](const Link& x, const Link& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });
  return out;
}

void RelationshipDataset::save(std::ostream& out) const {
  out << "# bgpintent relationships (CAIDA serial-1 format)\n";
  for (const Link& link : all_links())
    out << link.a << '|' << link.b << '|' << (link.p2c ? -1 : 0) << '\n';
}

void RelationshipDataset::load(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view view = util::trim(line);
    if (view.empty() || view.front() == '#') continue;
    const auto fields = util::split(view, '|');
    if (fields.size() < 3)
      throw util::ParseError(
          util::format("relationship line %zu: expected 3 fields", line_no));
    const auto a = util::parse_u32(fields[0]);
    const auto b = util::parse_u32(fields[1]);
    const std::string_view rel = util::trim(fields[2]);
    if (!a || !b)
      throw util::ParseError(
          util::format("relationship line %zu: bad ASN", line_no));
    if (rel == "-1")
      set_p2c(*a, *b);
    else if (rel == "0")
      set_p2p(*a, *b);
    else
      throw util::ParseError(
          util::format("relationship line %zu: bad relationship", line_no));
  }
}

double RelationshipDataset::agreement_with(
    const RelationshipDataset& truth) const {
  std::size_t known = 0;
  std::size_t agree = 0;
  for (const Link& link : all_links()) {
    const auto expected = truth.relationship(link.a, link.b);
    if (!expected) continue;
    ++known;
    const auto mine = relationship(link.a, link.b);
    if (mine == expected) ++agree;
  }
  if (known == 0) return 0.0;
  return static_cast<double>(agree) / static_cast<double>(known);
}

}  // namespace bgpintent::rel
