// AS relationship dataset: the product of relationship inference and the
// input to the paper's customer:peer feature (Fig. 7).  Supports the CAIDA
// serial-1 text format ("<a>|<b>|-1" provider-customer, "<a>|<b>|0" p2p)
// so real CAIDA files can be loaded in place of inferred ones.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <unordered_map>

#include "topo/as_graph.hpp"

namespace bgpintent::rel {

using bgp::Asn;
using topo::RelFrom;

class RelationshipDataset {
 public:
  /// Records `provider` as a provider of `customer` (overwrites).
  void set_p2c(Asn provider, Asn customer);

  /// Records a peer link (overwrites).
  void set_p2p(Asn a, Asn b);

  /// Relationship of `b` from `a`'s perspective; nullopt if unknown.
  /// (kCustomer means b is a's customer.)
  [[nodiscard]] std::optional<RelFrom> relationship(Asn a, Asn b) const noexcept;

  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] std::size_t p2c_count() const noexcept;
  [[nodiscard]] std::size_t p2p_count() const noexcept;

  /// Serializes in CAIDA serial-1 format (sorted, deterministic).
  void save(std::ostream& out) const;

  /// Parses CAIDA serial-1; '#' comments ignored.  Throws util::ParseError
  /// on malformed lines.
  void load(std::istream& in);

  /// Fraction of links on which this dataset agrees with `truth`
  /// (evaluated over this dataset's links that `truth` also knows).
  [[nodiscard]] double agreement_with(const RelationshipDataset& truth) const;

  struct Link {
    Asn a;  ///< provider for p2c
    Asn b;
    bool p2c;
  };
  [[nodiscard]] std::vector<Link> all_links() const;

 private:
  /// Key: (min, max) packed; value: +1 first-is-provider, -1 second-is-
  /// provider, 0 p2p.
  static std::uint64_t key(Asn a, Asn b) noexcept;
  std::unordered_map<std::uint64_t, int> links_;
};

}  // namespace bgpintent::rel
