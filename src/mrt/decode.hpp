// Fault-tolerant MRT decoding: options, per-record error capture, and the
// report that survives the whole ingest path.
//
// Real RouteViews / RIPE RIS archives routinely contain truncated
// transfers, torn records, and collector quirks.  Strict mode (the
// default) preserves the historical behavior: the first malformed record
// aborts the batch with MrtError.  Tolerant mode instead captures each
// record-level failure as a structured DecodeError, resynchronizes by
// scanning forward for the next plausible MRT header, and keeps decoding —
// subject to an error budget (absolute and as a fraction of records)
// beyond which it degrades to a hard DecodeBudgetError.  The algorithm and
// its guarantees are documented in docs/ROBUSTNESS.md.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mrt/buffer.hpp"

namespace bgpintent::mrt {

enum class DecodeMode : std::uint8_t {
  kStrict,    ///< first malformed record throws MrtError (historical)
  kTolerant,  ///< skip + resync around malformed records, within budget
};

/// Knobs for read_rib_entries / read_rib_entries_parallel.
struct DecodeOptions {
  DecodeMode mode = DecodeMode::kStrict;
  /// Tolerant mode: hard-fail once more than this many records were
  /// skipped.  The count includes resync scans that each consumed a
  /// would-be record.  Checked after every failure — this is the
  /// mid-stream bail-out against pathological files.
  std::uint64_t max_errors = 1000;
  /// Tolerant mode: hard-fail when skipped/(ok+skipped) exceeds this
  /// fraction, evaluated once at end of stream.  The denominator is only
  /// meaningful over the whole stream — a mid-stream check would make the
  /// outcome depend on *where* errors cluster and would let the sequential
  /// and parallel readers disagree; the absolute budget bounds mid-stream
  /// damage instead.
  double max_error_frac = 0.5;

  [[nodiscard]] bool tolerant() const noexcept {
    return mode == DecodeMode::kTolerant;
  }
};

/// One captured record-level failure (tolerant mode).
struct DecodeError {
  std::uint64_t byte_offset = 0;   ///< stream offset of the failed record
  std::uint64_t record_index = 0;  ///< zero-based index among framed records
  std::uint32_t raw_length = 0;    ///< header length field (0 if unreadable)
  std::string reason;

  friend bool operator==(const DecodeError&, const DecodeError&) = default;
};

/// Outcome summary of one tolerant (or strict) decode pass.  merge() makes
/// reports additive across files and across parallel chunks.
struct DecodeReport {
  /// Details are capped here so a pathological file cannot balloon memory;
  /// the counters keep counting past the cap.
  static constexpr std::size_t kMaxStoredErrors = 64;

  std::uint64_t records_ok = 0;       ///< framed and decoded cleanly
  std::uint64_t records_skipped = 0;  ///< framed-or-scanned past on error
  std::uint64_t bytes_skipped = 0;    ///< bytes consumed by failed records
  std::uint64_t resyncs = 0;          ///< forward scans for a new header
  /// resync_distance_log2[i] counts resyncs whose forward scan covered
  /// [2^i, 2^(i+1)) bytes (bucket 15 also holds everything larger).
  std::array<std::uint64_t, 16> resync_distance_log2{};
  std::vector<DecodeError> errors;  ///< first kMaxStoredErrors failures
  bool budget_exhausted = false;

  void add_error(DecodeError error);
  void add_resync(std::uint64_t distance_bytes);
  void merge(const DecodeReport& other);

  /// skipped / (ok + skipped); 0 when nothing was framed.
  [[nodiscard]] double error_fraction() const noexcept;

  /// True when the absolute budget is already violated (the only check
  /// that is monotone mid-stream).
  [[nodiscard]] bool over_budget(const DecodeOptions& options) const noexcept;

  /// End-of-stream check: absolute budget plus the fractional budget.
  [[nodiscard]] bool over_final_budget(
      const DecodeOptions& options) const noexcept;

  /// One-line human-readable summary ("ok=… skipped=… resyncs=…").
  [[nodiscard]] std::string summary() const;
};

/// Raised when tolerant decoding gives up because the error budget was
/// exceeded; carries the partial report for diagnostics.  Derives from
/// MrtError so callers that only handle the strict failure mode still see
/// a decode failure.
class DecodeBudgetError : public MrtError {
 public:
  DecodeBudgetError(const std::string& what, DecodeReport report)
      : MrtError(what), report_(std::move(report)) {}

  [[nodiscard]] const DecodeReport& report() const noexcept { return report_; }

 private:
  DecodeReport report_;
};

}  // namespace bgpintent::mrt
