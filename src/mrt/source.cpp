#include "mrt/source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>

#include "mrt/buffer.hpp"

namespace bgpintent::mrt {

namespace {

/// RAII fd so every early throw below closes the descriptor.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

[[noreturn]] void throw_errno(const std::string& path, const char* what) {
  throw MrtError(path + ": " + what + ": " + std::strerror(errno));
}

}  // namespace

MmapSource::MmapSource(const std::string& path) {
  Fd file;
  file.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file.fd < 0) throw_errno(path, "cannot open");
  struct stat st {};
  if (::fstat(file.fd, &st) != 0) throw_errno(path, "cannot stat");
  if (!S_ISREG(st.st_mode))
    throw MrtError(path + ": not a regular file (cannot mmap)");
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) return;  // mmap(len=0) is EINVAL; an empty span is fine
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, file.fd, 0);
  if (map == MAP_FAILED) {
    size_ = 0;
    throw_errno(path, "cannot mmap");
  }
  map_ = map;
  // Decode walks the image front to back; tell the kernel to read ahead.
  ::madvise(map_, size_, MADV_SEQUENTIAL);
}

MmapSource::~MmapSource() {
  if (map_ != nullptr) ::munmap(map_, size_);
}

std::unique_ptr<ByteSource> open_source(const std::string& path,
                                        bool allow_mmap) {
  if (allow_mmap) {
    try {
      return std::make_unique<MmapSource>(path);
    } catch (const MrtError&) {
      // Not mappable (fifo, special file, odd filesystem) — fall through
      // to the buffered read, which reports its own failure if the path
      // is flatly unreadable.
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw MrtError(path + ": cannot open");
  return std::make_unique<BufferSource>(slurp_stream(in));
}

std::vector<std::uint8_t> slurp_stream(std::istream& in) {
  std::vector<std::uint8_t> bytes;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0)
    bytes.insert(bytes.end(), buffer, buffer + in.gcount());
  if (in.bad()) throw MrtError("failed to read MRT stream");
  return bytes;
}

}  // namespace bgpintent::mrt
