// Streaming decode of a BGP4MP update firehose.
//
// decode_rib_stream (mrt_file.hpp) flattens everything to announced rows —
// the right shape for batch RIB ingest, where withdrawals do not exist.
// A live collector stream is different: BGP4MP UPDATE messages carry
// *withdrawn* prefixes alongside announcements, and consumers like the
// sliding-window classifier (src/stream/) need both, each stamped with the
// record's collector timestamp so the window can advance.
//
// UpdateSink is the update-shaped sibling of EntrySink: one callback per
// announced prefix (the same reused scratch row contract) plus one per
// withdrawn prefix.  Non-BGP4MP records in the stream — RIB snapshot rows
// a collector may interleave, or a priming TABLE_DUMP_V2 dump concatenated
// in front of the updates — are decoded through the existing
// decode_data_record unit and surface as announcements, so a stream source
// accepts exactly the record mix real archives contain.
//
// Framing reuses StrictFramer / TolerantFramer byte for byte: strict mode
// throws at the first malformed record, tolerant mode skips + resyncs
// under the same error budgets, and the DecodeReport outcome (also written
// on throw) matches decode_rib_stream semantics exactly
// (docs/ROBUSTNESS.md, docs/STREAMING.md).
#pragma once

#include <cstdint>
#include <iosfwd>

#include "bgp/route.hpp"
#include "mrt/decode.hpp"
#include "mrt/framing.hpp"
#include "mrt/source.hpp"

namespace bgpintent::mrt {

/// Consumer of a decoded update stream, in stream order.  `entry` is a
/// scratch row reused across calls, fully (re)assigned before each call
/// and only valid until on_announce returns — copy or steal what outlives
/// the call (the EntrySink contract).  `timestamp` is the MRT record's
/// collector timestamp (seconds since epoch).
class UpdateSink {
 public:
  virtual void on_announce(bgp::RibEntry& entry, std::uint32_t timestamp) = 0;
  virtual void on_withdraw(const bgp::VantagePointId& peer,
                           const bgp::Prefix& prefix,
                           std::uint32_t timestamp) = 0;

 protected:
  ~UpdateSink() = default;
};

/// Decodes one non-PEER_INDEX_TABLE record of an update stream into
/// `sink`.  BGP4MP MESSAGE_AS4 records emit their withdrawals first, then
/// one announcement per announced prefix (wire order within each list);
/// TABLE_DUMP / TABLE_DUMP_V2 rows emit as announcements stamped with the
/// record timestamp; state changes and unknown types are skipped.  Pure
/// function of (record, peer_table), like decode_data_record.
void decode_update_record(const RecordView& record,
                          const std::vector<bgp::VantagePointId>& peer_table,
                          UpdateSink& sink, RowScratch& scratch);

/// Streams a whole update source into `sink`.  Strict/tolerant semantics,
/// error budgets, and the DecodeReport outcome (also written on throw)
/// match decode_rib_stream exactly — the two share the framers and the
/// per-record decode units.
void decode_update_stream(const ByteSource& source, UpdateSink& sink,
                          const DecodeOptions& options = {},
                          DecodeReport* report = nullptr);

/// istream variant: strict mode streams record-by-record through one
/// scratch body buffer (bounded memory on an endless pipe — the firehose
/// case); tolerant mode buffers first, because resync needs random access.
void decode_update_stream(std::istream& in, UpdateSink& sink,
                          const DecodeOptions& options = {},
                          DecodeReport* report = nullptr);

}  // namespace bgpintent::mrt
