#include "mrt/decode.hpp"

#include <algorithm>
#include <bit>

#include "util/strings.hpp"

namespace bgpintent::mrt {

void DecodeReport::add_error(DecodeError error) {
  ++records_skipped;
  if (errors.size() < kMaxStoredErrors) errors.push_back(std::move(error));
}

void DecodeReport::add_resync(std::uint64_t distance_bytes) {
  ++resyncs;
  const std::uint64_t width = std::max<std::uint64_t>(distance_bytes, 1);
  const std::size_t bucket =
      std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(width)) - 1,
                            resync_distance_log2.size() - 1);
  ++resync_distance_log2[bucket];
}

void DecodeReport::merge(const DecodeReport& other) {
  records_ok += other.records_ok;
  records_skipped += other.records_skipped;
  bytes_skipped += other.bytes_skipped;
  resyncs += other.resyncs;
  for (std::size_t i = 0; i < resync_distance_log2.size(); ++i)
    resync_distance_log2[i] += other.resync_distance_log2[i];
  for (const DecodeError& error : other.errors) {
    if (errors.size() >= kMaxStoredErrors) break;
    errors.push_back(error);
  }
  budget_exhausted = budget_exhausted || other.budget_exhausted;
}

double DecodeReport::error_fraction() const noexcept {
  const std::uint64_t total = records_ok + records_skipped;
  if (total == 0) return 0.0;
  return static_cast<double>(records_skipped) / static_cast<double>(total);
}

bool DecodeReport::over_budget(const DecodeOptions& options) const noexcept {
  return records_skipped > options.max_errors;
}

bool DecodeReport::over_final_budget(
    const DecodeOptions& options) const noexcept {
  return records_skipped > options.max_errors ||
         error_fraction() > options.max_error_frac;
}

std::string DecodeReport::summary() const {
  return util::format(
      "ok=%llu skipped=%llu bytes_skipped=%llu resyncs=%llu%s",
      static_cast<unsigned long long>(records_ok),
      static_cast<unsigned long long>(records_skipped),
      static_cast<unsigned long long>(bytes_skipped),
      static_cast<unsigned long long>(resyncs),
      budget_exhausted ? " budget_exhausted" : "");
}

}  // namespace bgpintent::mrt
