// BGP UPDATE wire format (RFC 4271 §4.3) with the path attributes the
// pipeline consumes: ORIGIN, AS_PATH (4-octet, RFC 6793), NEXT_HOP, MED,
// LOCAL_PREF, COMMUNITIES (RFC 1997) and LARGE_COMMUNITIES (RFC 8092).
// Unknown attributes are skipped on decode (flags permitting), matching
// how collectors treat partial/unknown optional attributes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/route.hpp"
#include "mrt/buffer.hpp"

namespace bgpintent::mrt {

// Path attribute type codes.
inline constexpr std::uint8_t kAttrOrigin = 1;
inline constexpr std::uint8_t kAttrAsPath = 2;
inline constexpr std::uint8_t kAttrNextHop = 3;
inline constexpr std::uint8_t kAttrMed = 4;
inline constexpr std::uint8_t kAttrLocalPref = 5;
inline constexpr std::uint8_t kAttrCommunities = 8;
inline constexpr std::uint8_t kAttrExtCommunities = 16;
inline constexpr std::uint8_t kAttrLargeCommunities = 32;

// Attribute flag bits.
inline constexpr std::uint8_t kFlagOptional = 0x80;
inline constexpr std::uint8_t kFlagTransitive = 0x40;
inline constexpr std::uint8_t kFlagPartial = 0x20;
inline constexpr std::uint8_t kFlagExtendedLength = 0x10;

/// Decoded path-attribute block.
struct PathAttributes {
  bgp::Origin origin = bgp::Origin::kIgp;
  bgp::AsPath as_path;
  std::uint32_t next_hop = 0;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  std::vector<bgp::Community> communities;
  std::vector<bgp::ExtCommunity> ext_communities;
  std::vector<bgp::LargeCommunity> large_communities;
};

/// Serializes the path-attribute block (4-octet AS_PATH encoding).
/// Extended length is used automatically when an attribute exceeds 255
/// bytes.
void encode_path_attributes(ByteWriter& out, const PathAttributes& attrs);

/// Parses a path-attribute block of exactly `length` bytes from `in`.
/// Throws MrtError on malformed data.  `asn16` selects 2-octet AS_PATH
/// parsing (legacy peers); default is 4-octet.
[[nodiscard]] PathAttributes decode_path_attributes(ByteReader& in,
                                                    std::size_t length,
                                                    bool asn16 = false);

/// In-place variant: fully (re)assigns `attrs`, reusing its heap buffers
/// (path segments, community vectors).  A decode loop that keeps one
/// PathAttributes scratch across records reaches a steady state where
/// attribute parsing allocates nothing (docs/PERFORMANCE.md); the
/// returning variant above simply wraps this with a fresh object.
void decode_path_attributes(ByteReader& in, std::size_t length, bool asn16,
                            PathAttributes& attrs);

/// A decoded BGP UPDATE.
struct BgpUpdate {
  std::vector<bgp::Prefix> withdrawn;
  PathAttributes attrs;
  std::vector<bgp::Prefix> announced;

  [[nodiscard]] bool has_announcements() const noexcept {
    return !announced.empty();
  }
};

/// Serializes a full BGP UPDATE message including the 16-byte marker
/// header (RFC 4271 §4.1).
void encode_bgp_update(ByteWriter& out, const BgpUpdate& update);

/// Parses one BGP message; throws MrtError unless it is a well-formed
/// UPDATE.  KEEPALIVEs yield an empty update.
[[nodiscard]] BgpUpdate decode_bgp_message(ByteReader& in, bool asn16 = false);

/// NLRI helpers (prefix encoding is shared by UPDATE and TABLE_DUMP_V2).
void encode_nlri_prefix(ByteWriter& out, const bgp::Prefix& prefix);
[[nodiscard]] bgp::Prefix decode_nlri_prefix(ByteReader& in);

}  // namespace bgpintent::mrt
