// Record framing and per-record decoding, shared by every MRT reader.
//
// This is the layer underneath mrt_file.hpp's entry points: records are
// framed as zero-copy views into a stable byte image (RecordView carries a
// span, never an owned body), and each data record is decoded into one
// reused scratch row that is handed to an EntrySink.  The materializing
// readers (read_rib_entries*) are a sink that appends to a vector; the
// streaming ingest path (core::MrtIngest, docs/PERFORMANCE.md) is a sink
// that interns the path and appends a packed 8-byte tuple — both share the
// framers and decode units here, so they cannot diverge.
//
// Two framers cover the two failure models:
//
//   StrictFramer    walks header->body->header and throws MrtError at the
//                   first truncated/oversized record (historical strict
//                   semantics).
//   TolerantFramer  skips damage and resynchronizes on the next plausible
//                   header, recording every failure into a DecodeReport
//                   under an error budget (docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/route.hpp"
#include "mrt/bgp_message.hpp"
#include "mrt/decode.hpp"

namespace bgpintent::mrt {

// MRT record types / subtypes (RFC 6396 §4).
inline constexpr std::uint16_t kTypeTableDumpV2 = 13;
inline constexpr std::uint16_t kSubtypePeerIndexTable = 1;
inline constexpr std::uint16_t kSubtypeRibIpv4Unicast = 2;
inline constexpr std::uint16_t kTypeBgp4mp = 16;
inline constexpr std::uint16_t kSubtypeBgp4mpStateChange = 0;
inline constexpr std::uint16_t kSubtypeBgp4mpMessageAs4 = 4;
inline constexpr std::uint16_t kSubtypeBgp4mpStateChangeAs4 = 5;
// Legacy TABLE_DUMP (RFC 6396 §4.2): one RIB row per record, 2-octet ASNs.
inline constexpr std::uint16_t kTypeTableDump = 12;
inline constexpr std::uint16_t kSubtypeTableDumpIpv4 = 1;

/// Sanity bound on one record body, 16 MiB.
inline constexpr std::size_t kMaxRecordSize = 1 << 24;

/// Records per decode task in the parallel readers and the parallel
/// streaming ingest: large enough to amortize scheduling, small enough to
/// keep all workers busy on typical RIB chunk sizes.  One shared constant
/// so chunk boundaries (and hence tolerant merge order) do not depend on
/// which path framed the stream.
inline constexpr std::size_t kChunkRecords = 64;

/// One framed MRT record: header fields plus a borrowed view of the body.
/// The view points into the framed image (mmap, owned buffer, or a
/// reader's scratch) and is only valid while that image is.
struct RecordView {
  std::uint32_t timestamp = 0;
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::span<const std::uint8_t> body;
};

/// Consumer of streamed decode.  on_entry is called once per decoded RIB
/// row / update announcement, in stream order.  `entry` is a scratch row
/// reused across calls: it is fully (re)assigned before every call, it is
/// only valid until on_entry returns, and the sink may move out of it —
/// copy or steal whatever outlives the call.
class EntrySink {
 public:
  virtual void on_entry(bgp::RibEntry& entry) = 0;

 protected:
  ~EntrySink() = default;
};

[[nodiscard]] inline bool is_peer_index_table(std::uint16_t type,
                                              std::uint16_t subtype) noexcept {
  return type == kTypeTableDumpV2 && subtype == kSubtypePeerIndexTable;
}
[[nodiscard]] inline bool is_peer_index_table(const RecordView& record) noexcept {
  return is_peer_index_table(record.type, record.subtype);
}

/// Decodes a PEER_INDEX_TABLE body into a fresh peer table.
[[nodiscard]] std::vector<bgp::VantagePointId> decode_peer_index_table(
    const RecordView& record);

/// Per-decode-loop scratch: the row handed to sinks plus the attribute
/// block it is refilled from.  Both recycle their heap buffers across
/// records, so a sink that does not move out of the row (the streaming
/// ingest) reaches a steady state where decoding allocates nothing per
/// record.  One instance per decode loop / worker thread.
struct RowScratch {
  bgp::RibEntry row;
  PathAttributes attrs;
};

/// Decodes one non-PEER_INDEX_TABLE record, handing each contained entry
/// to `sink` via `scratch`.  Pure function of (record, peer_table) — the
/// per-record unit shared by all readers, and what makes chunked decoding
/// safe: workers only ever read `peer_table` through an immutable
/// snapshot.  Unknown record types are skipped.
void decode_data_record(const RecordView& record,
                        const std::vector<bgp::VantagePointId>& peer_table,
                        EntrySink& sink, RowScratch& scratch);

/// The resync plausibility test: type/subtype pairs real archives carry
/// (RFC 6396 plus the deprecated BGP4MP_ET sibling) with a sane length.
[[nodiscard]] bool plausible_record_header(std::uint16_t type,
                                           std::uint16_t subtype,
                                           std::uint32_t length) noexcept;

/// Frames records off an in-memory MRT image with strict semantics: the
/// first truncated header/body or oversized record throws MrtError, like
/// MrtReader over an istream — but bodies come back as zero-copy views.
class StrictFramer {
 public:
  explicit StrictFramer(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  /// Frames the next record; false at a clean end of data.
  [[nodiscard]] bool next(RecordView& out);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Frames records off an in-memory MRT image, skipping and resynchronizing
/// around framing damage (truncated headers, implausible or oversized
/// records, length fields pointing past the image).  Framing failures are
/// recorded into the shared report; the caller enforces the error budget.
class TolerantFramer {
 public:
  struct Framed {
    RecordView record;
    std::uint64_t offset = 0;
    std::uint64_t index = 0;
  };

  TolerantFramer(std::span<const std::uint8_t> data,
                 const DecodeOptions& options, DecodeReport& report) noexcept
      : data_(data), options_(&options), report_(&report) {}

  /// Frames the next record; false at end of data.  Throws
  /// DecodeBudgetError when framing failures alone exceed the budget.
  [[nodiscard]] bool next(Framed& out);

 private:
  /// True when `end` is a credible record boundary: exact end of data, or
  /// the start of another plausible header.
  [[nodiscard]] bool chains_at(std::size_t end) const noexcept;

  void check_budget() const;

  void fail_and_resync(std::uint16_t type, std::uint16_t subtype,
                       std::uint32_t length);

  /// First offset >= `from` that looks like a record boundary: plausible
  /// header whose body fits and that chains into end-of-data or another
  /// plausible header.  The two-record lookahead makes false positives
  /// inside record bodies require two chained coincidences.
  [[nodiscard]] std::size_t scan_for_header(std::size_t from) const noexcept;

  std::span<const std::uint8_t> data_;
  const DecodeOptions* options_;
  DecodeReport* report_;
  std::size_t pos_ = 0;
  std::uint64_t index_ = 0;
};

/// Body-decode failure bookkeeping shared by the sequential and chunked
/// tolerant paths (identical accounting keeps their reports bit-equal).
void record_body_failure(DecodeReport& report, const TolerantFramer::Framed& framed,
                         const char* what);

[[noreturn]] void throw_budget(DecodeReport& report);

/// End-of-stream budget check: this is where the fractional budget (which
/// needs the full-stream denominator) is enforced.
void check_final_budget(DecodeReport& report, const DecodeOptions& options);

}  // namespace bgpintent::mrt
