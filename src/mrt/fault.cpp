#include "mrt/fault.hpp"

#include <algorithm>

#include "mrt/buffer.hpp"
#include "mrt/framing.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bgpintent::mrt {

namespace {

[[nodiscard]] std::uint16_t peek_u16(std::span<const std::uint8_t> bytes,
                                     std::uint64_t pos) noexcept {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(bytes[pos]) << 8) | bytes[pos + 1]);
}

[[nodiscard]] std::uint32_t peek_u32(std::span<const std::uint8_t> bytes,
                                     std::uint64_t pos) noexcept {
  return (static_cast<std::uint32_t>(bytes[pos]) << 24) |
         (static_cast<std::uint32_t>(bytes[pos + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes[pos + 2]) << 8) |
         static_cast<std::uint32_t>(bytes[pos + 3]);
}

void poke_u32(std::vector<std::uint8_t>& bytes, std::uint64_t pos,
              std::uint32_t value, bool big_endian) noexcept {
  if (big_endian) {
    bytes[pos] = static_cast<std::uint8_t>(value >> 24);
    bytes[pos + 1] = static_cast<std::uint8_t>(value >> 16);
    bytes[pos + 2] = static_cast<std::uint8_t>(value >> 8);
    bytes[pos + 3] = static_cast<std::uint8_t>(value);
  } else {
    bytes[pos] = static_cast<std::uint8_t>(value);
    bytes[pos + 1] = static_cast<std::uint8_t>(value >> 8);
    bytes[pos + 2] = static_cast<std::uint8_t>(value >> 16);
    bytes[pos + 3] = static_cast<std::uint8_t>(value >> 24);
  }
}

}  // namespace

std::string_view to_string(CorruptionKind kind) noexcept {
  switch (kind) {
    case CorruptionKind::kBitFlip:
      return "bitflip";
    case CorruptionKind::kTruncate:
      return "truncate";
    case CorruptionKind::kSplice:
      return "splice";
    case CorruptionKind::kLengthLie:
      return "lengthlie";
  }
  return "unknown";
}

std::optional<CorruptionKind> parse_corruption_kind(
    std::string_view name) noexcept {
  for (CorruptionKind kind : kAllCorruptionKinds)
    if (name == to_string(kind)) return kind;
  return std::nullopt;
}

std::vector<RecordSpan> index_records(std::span<const std::uint8_t> bytes) {
  std::vector<RecordSpan> spans;
  std::uint64_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 12) throw MrtError("truncated MRT header");
    const std::uint64_t body = peek_u32(bytes, pos + 8);
    if (body > kMaxRecordSize) throw MrtError("oversized MRT record");
    if (pos + 12 + body > bytes.size())
      throw MrtError("truncated MRT record body");
    spans.push_back({pos, 12 + body});
    pos += 12 + body;
  }
  return spans;
}

CorruptionResult corrupt_spans(std::span<const std::uint8_t> bytes,
                               std::span<const RecordSpan> spans,
                               const FrameLayout& layout, CorruptionKind kind,
                               std::uint64_t seed,
                               std::uint64_t first_victim) {
  if (spans.size() <= first_victim)
    throw MrtError("corrupt_spans needs an eligible victim record");

  util::Rng rng(seed);
  const std::uint64_t victim =
      first_victim + rng.index(spans.size() - first_victim);
  const RecordSpan& span = spans[victim];
  const std::uint64_t body_len = span.length - layout.header_bytes;

  CorruptionResult result;
  result.bytes.assign(bytes.begin(), bytes.end());

  switch (kind) {
    case CorruptionKind::kBitFlip: {
      // Flip a bit inside the victim's body; an empty body (never the case
      // for RIB rows) falls back to the header's first word (the MRT
      // timestamp, which no reader checks).
      const std::uint64_t byte =
          body_len > 0 ? span.offset + layout.header_bytes + rng.index(body_len)
                       : span.offset + rng.index(4);
      const std::uint8_t bit = static_cast<std::uint8_t>(rng.index(8));
      result.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      result.touched_records = {victim};
      result.description = util::format(
          "bitflip record %llu byte %llu bit %u",
          static_cast<unsigned long long>(victim),
          static_cast<unsigned long long>(byte), static_cast<unsigned>(bit));
      break;
    }
    case CorruptionKind::kTruncate: {
      // Cut strictly inside the victim: it and everything after are lost.
      const std::uint64_t cut = span.offset + 1 + rng.index(span.length - 1);
      result.bytes.resize(cut);
      for (std::uint64_t r = victim; r < spans.size(); ++r)
        result.touched_records.push_back(r);
      result.description = util::format(
          "truncate at byte %llu inside record %llu",
          static_cast<unsigned long long>(cut),
          static_cast<unsigned long long>(victim));
      break;
    }
    case CorruptionKind::kSplice: {
      // Remove a byte range starting inside the victim; every record the
      // range overlaps is torn.
      const std::uint64_t start = span.offset + 1 + rng.index(span.length - 1);
      const std::uint64_t max_removed =
          std::min<std::uint64_t>(bytes.size() - start, 256);
      const std::uint64_t removed = 1 + rng.index(max_removed);
      result.bytes.erase(
          result.bytes.begin() + static_cast<std::ptrdiff_t>(start),
          result.bytes.begin() + static_cast<std::ptrdiff_t>(start + removed));
      for (std::uint64_t r = 0; r < spans.size(); ++r)
        if (spans[r].offset < start + removed &&
            start < spans[r].offset + spans[r].length)
          result.touched_records.push_back(r);
      result.description = util::format(
          "splice %llu bytes out at %llu (record %llu)",
          static_cast<unsigned long long>(removed),
          static_cast<unsigned long long>(start),
          static_cast<unsigned long long>(victim));
      break;
    }
    case CorruptionKind::kLengthLie: {
      const bool shrink = body_len > 0 && rng.chance(0.5);
      if (shrink) {
        // A shorter length tears the victim's body; the next framing
        // attempt lands mid-record and resyncs at the following boundary.
        const std::uint32_t lie =
            static_cast<std::uint32_t>(rng.index(body_len));
        poke_u32(result.bytes, span.offset + layout.length_offset, lie,
                 layout.length_big_endian);
        result.touched_records = {victim};
        result.description = util::format(
            "lengthlie shrink record %llu body %llu -> %u",
            static_cast<unsigned long long>(victim),
            static_cast<unsigned long long>(body_len), lie);
      } else {
        // A longer length makes the victim swallow the head of its
        // successor (when one exists), so both are untrusted.
        const std::uint32_t lie = static_cast<std::uint32_t>(
            body_len + 1 + rng.index(64));
        poke_u32(result.bytes, span.offset + layout.length_offset, lie,
                 layout.length_big_endian);
        result.touched_records = {victim};
        if (victim + 1 < spans.size())
          result.touched_records.push_back(victim + 1);
        result.description = util::format(
            "lengthlie grow record %llu body %llu -> %u",
            static_cast<unsigned long long>(victim),
            static_cast<unsigned long long>(body_len), lie);
      }
      break;
    }
  }
  return result;
}

CorruptionResult corrupt_mrt(std::span<const std::uint8_t> bytes,
                             CorruptionKind kind, std::uint64_t seed) {
  const std::vector<RecordSpan> spans = index_records(bytes);
  if (spans.empty()) throw MrtError("corrupt_mrt needs a non-empty image");

  // Protect record 0 only when it is the PEER_INDEX_TABLE of a RIB fixture
  // — without it no surviving data record is joinable to its peer, so the
  // touched-set recovery contract would be unprovable.  BGP4MP update
  // streams carry no peer table, so every record is fair game there.
  const bool protect_first =
      peek_u16(bytes, spans[0].offset + 4) == kTypeTableDumpV2 &&
      peek_u16(bytes, spans[0].offset + 6) == kSubtypePeerIndexTable;
  if (protect_first && spans.size() < 2)
    throw MrtError(
        "corrupt_mrt needs a data record beyond the peer index table");

  return corrupt_spans(bytes, spans, kMrtFrameLayout, kind, seed,
                       protect_first ? 1 : 0);
}

}  // namespace bgpintent::mrt
