// MRT export format (RFC 6396): the byte format RouteViews and RIPE RIS
// publish.  We implement the records the paper's pipeline consumes:
//
//   TABLE_DUMP_V2 / PEER_INDEX_TABLE   collector peer table
//   TABLE_DUMP_V2 / RIB_IPV4_UNICAST   RIB snapshot rows
//   BGP4MP / MESSAGE_AS4               update messages (4-octet ASNs)
//
// MrtWriter serializes collector state to any ostream; MrtReader streams
// records back, reconstructing RibEntry rows — so the inference pipeline
// can be pointed at a file produced here or at a real (uncompressed)
// RouteViews dump.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "bgp/route.hpp"
#include "mrt/bgp_message.hpp"
#include "mrt/decode.hpp"
#include "mrt/framing.hpp"
#include "mrt/source.hpp"

namespace bgpintent::util {
class ThreadPool;
}

namespace bgpintent::mrt {

/// One raw MRT record (header fields + undecoded body).
struct MrtRecord {
  std::uint32_t timestamp = 0;
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;
};

/// Serializes MRT records to a stream.
class MrtWriter {
 public:
  explicit MrtWriter(std::ostream& out) noexcept : out_(&out) {}

  /// Writes a raw record.
  void write_record(const MrtRecord& record);

  /// Writes a full RIB snapshot: one PEER_INDEX_TABLE followed by one
  /// RIB_IPV4_UNICAST record per distinct prefix.  Entries may be in any
  /// order; they are grouped by prefix internally.
  void write_rib_snapshot(const std::vector<bgp::RibEntry>& entries,
                          std::uint32_t collector_id, std::uint32_t timestamp);

  /// Writes one BGP4MP_MESSAGE_AS4 UPDATE announcing `route` as heard from
  /// `peer`.
  void write_update(const bgp::VantagePointId& peer, const bgp::Route& route,
                    std::uint32_t timestamp);

  /// Writes one BGP4MP_MESSAGE_AS4 UPDATE withdrawing `prefixes` as heard
  /// from `peer` (no attributes, no announcements — the pure-withdrawal
  /// shape real update streams carry).
  void write_withdraw(const bgp::VantagePointId& peer,
                      std::span<const bgp::Prefix> prefixes,
                      std::uint32_t timestamp);

  /// Writes a BGP4MP_STATE_CHANGE_AS4 record (FSM states per RFC 4271:
  /// 1=Idle .. 6=Established).
  void write_state_change(const bgp::VantagePointId& peer,
                          std::uint16_t old_state, std::uint16_t new_state,
                          std::uint32_t timestamp);

  /// Writes a RIB snapshot in the *legacy* TABLE_DUMP format (2-octet
  /// ASNs).  Paths containing 4-octet ASNs are rejected with MrtError;
  /// this writer exists to exercise readers against pre-2008 archives.
  void write_legacy_rib(const std::vector<bgp::RibEntry>& entries,
                        std::uint32_t timestamp);

 private:
  std::ostream* out_;
};

/// Streams MRT records from an istream.
class MrtReader {
 public:
  explicit MrtReader(std::istream& in) noexcept : in_(&in) {}

  /// Reads the next record; returns false at a clean EOF.  Throws MrtError
  /// on a truncated or oversized record.
  [[nodiscard]] bool next(MrtRecord& record);

  /// Like next(), but the body lands in one reader-owned scratch buffer
  /// reused across calls instead of a per-record allocation — the hot
  /// sequential path for streaming decode off a pipe.  The view is only
  /// valid until the next next_view() call on this reader.
  [[nodiscard]] bool next_view(RecordView& record);

 private:
  /// Reads one 12-byte header + body into `body` (resized in place);
  /// false at a clean EOF.
  [[nodiscard]] bool read_record(std::uint32_t& timestamp, std::uint16_t& type,
                                 std::uint16_t& subtype,
                                 std::vector<std::uint8_t>& body);

  std::istream* in_;
  std::vector<std::uint8_t> scratch_;
};

/// Reads a whole MRT stream back into RIB entries: RIB snapshot records are
/// joined with their PEER_INDEX_TABLE; BGP4MP updates contribute one entry
/// per announced prefix.  Unknown record types are skipped.
///
/// Strict mode (the default DecodeOptions) throws MrtError on the first
/// malformed record.  Tolerant mode skips malformed records, resynchronizes
/// on the next plausible header, and throws DecodeBudgetError only when the
/// error budget is exceeded; tolerant input is buffered in memory so the
/// resync scan can look backward-free at arbitrary offsets
/// (docs/ROBUSTNESS.md).  When `report` is non-null it receives the decode
/// outcome — also on throw, so diagnostics survive hard failures.
[[nodiscard]] std::vector<bgp::RibEntry> read_rib_entries(std::istream& in);
[[nodiscard]] std::vector<bgp::RibEntry> read_rib_entries(
    std::istream& in, const DecodeOptions& options,
    DecodeReport* report = nullptr);

/// Convenience: decode the records of one in-memory MRT body.
[[nodiscard]] std::vector<bgp::RibEntry> read_rib_entries(
    const std::vector<std::uint8_t>& bytes);
[[nodiscard]] std::vector<bgp::RibEntry> read_rib_entries(
    std::span<const std::uint8_t> bytes, const DecodeOptions& options,
    DecodeReport* report = nullptr);

/// Parallel variant of read_rib_entries: the caller's thread sequentially
/// frames records off the stream (record lengths are data-dependent, so
/// framing cannot be split) and batches them into chunks; chunk *decoding*
/// — the attribute/NLRI parsing that dominates ingest cost — runs on
/// `pool`.  In-flight chunks are bounded at ~2x the pool size, so memory
/// stays proportional to the pool, never to the file.  Results concatenate
/// in chunk submission order and are identical to the sequential reader's.
///
/// PEER_INDEX_TABLE records are decoded inline by the framing thread
/// (rare, cheap); each chunk carries an immutable snapshot of the peer
/// table in force when its records were framed.
///
/// Errors (strict mode): malformed record bodies raise mrt::MrtError out of
/// this call in chunk order; framing errors (truncated header/body,
/// oversized record) raise immediately.  Abandoned in-flight chunks
/// self-contain their data, so an early throw cannot deadlock or leave
/// dangling references.
///
/// Tolerant mode buffers the stream, frames with the same resync scanner as
/// the sequential tolerant reader, and captures chunk-local decode errors
/// inside each chunk's result instead of throwing — a poisoned chunk never
/// abandons its sibling futures.  Chunk reports merge into `report` in
/// submission order, so entries and counters are identical to the
/// sequential tolerant reader's at any pool size.  When the error budget
/// trips, every in-flight chunk is drained before DecodeBudgetError is
/// raised.
[[nodiscard]] std::vector<bgp::RibEntry> read_rib_entries_parallel(
    std::istream& in, util::ThreadPool& pool);
[[nodiscard]] std::vector<bgp::RibEntry> read_rib_entries_parallel(
    std::istream& in, util::ThreadPool& pool, const DecodeOptions& options,
    DecodeReport* report = nullptr);

/// Streaming decode: hands every decoded entry to `sink` (one reused
/// scratch row, stream order) without materializing a RibEntry vector —
/// the entry point behind core::MrtIngest and the incremental classifier's
/// MRT ingest (docs/PERFORMANCE.md).  Record bodies are parsed as
/// zero-copy views into the source image.  Strict/tolerant semantics,
/// error budgets, and the DecodeReport outcome (also written on throw)
/// match read_rib_entries exactly.
void decode_rib_stream(const ByteSource& source, EntrySink& sink,
                       const DecodeOptions& options = {},
                       DecodeReport* report = nullptr);

/// istream variant: strict mode streams record-by-record through one
/// scratch body buffer (bounded memory on arbitrarily long pipes);
/// tolerant mode buffers the stream first, because resync needs to scan
/// the image at arbitrary offsets.
void decode_rib_stream(std::istream& in, EntrySink& sink,
                       const DecodeOptions& options = {},
                       DecodeReport* report = nullptr);

}  // namespace bgpintent::mrt
