#include "mrt/mrt_file.hpp"

#include "bgp/asn.hpp"
#include "util/thread_pool.hpp"

#include <deque>
#include <future>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

namespace bgpintent::mrt {

namespace {

constexpr std::size_t kMaxRecordSize = 1 << 24;  // sanity bound, 16 MiB
constexpr std::uint8_t kPeerTypeAs4 = 0x02;      // RFC 6396 §4.3.1

/// Builds the PEER_INDEX_TABLE body; returns peer -> index.
std::map<bgp::VantagePointId, std::uint16_t> build_peer_table(
    ByteWriter& body, const std::vector<bgp::RibEntry>& entries,
    std::uint32_t collector_id) {
  std::map<bgp::VantagePointId, std::uint16_t> index;
  for (const auto& entry : entries) index.emplace(entry.vantage_point, 0);
  std::uint16_t next = 0;
  for (auto& [peer, idx] : index) idx = next++;

  body.put_u32(collector_id);
  body.put_u16(0);  // empty view name
  body.put_u16(static_cast<std::uint16_t>(index.size()));
  for (const auto& [peer, idx] : index) {
    body.put_u8(kPeerTypeAs4);      // IPv4 peer, 4-octet ASN
    body.put_u32(peer.address);     // peer BGP id (we reuse the address)
    body.put_u32(peer.address);     // peer IP
    body.put_u32(peer.asn);
  }
  return index;
}

}  // namespace

void MrtWriter::write_record(const MrtRecord& record) {
  ByteWriter header;
  header.put_u32(record.timestamp);
  header.put_u16(record.type);
  header.put_u16(record.subtype);
  header.put_u32(static_cast<std::uint32_t>(record.body.size()));
  out_->write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.size()));
  out_->write(reinterpret_cast<const char*>(record.body.data()),
              static_cast<std::streamsize>(record.body.size()));
  if (!*out_) throw MrtError("stream write failed");
}

void MrtWriter::write_rib_snapshot(const std::vector<bgp::RibEntry>& entries,
                                   std::uint32_t collector_id,
                                   std::uint32_t timestamp) {
  ByteWriter peer_body;
  const auto peer_index = build_peer_table(peer_body, entries, collector_id);
  write_record(MrtRecord{timestamp, kTypeTableDumpV2, kSubtypePeerIndexTable,
                         peer_body.take()});

  // Group entries by prefix, preserving prefix order.
  std::map<bgp::Prefix, std::vector<const bgp::RibEntry*>> by_prefix;
  for (const auto& entry : entries)
    by_prefix[entry.route.prefix].push_back(&entry);

  std::uint32_t sequence = 0;
  for (const auto& [prefix, rows] : by_prefix) {
    ByteWriter body;
    body.put_u32(sequence++);
    encode_nlri_prefix(body, prefix);
    body.put_u16(static_cast<std::uint16_t>(rows.size()));
    for (const bgp::RibEntry* row : rows) {
      body.put_u16(peer_index.at(row->vantage_point));
      body.put_u32(timestamp);  // originated time
      ByteWriter attrs;
      PathAttributes pa;
      pa.origin = row->route.origin_attr;
      pa.as_path = row->route.path;
      pa.next_hop = row->route.next_hop;
      pa.med = row->route.med;
      pa.communities = row->route.communities;
      pa.ext_communities = row->route.ext_communities;
      pa.large_communities = row->route.large_communities;
      encode_path_attributes(attrs, pa);
      body.put_u16(static_cast<std::uint16_t>(attrs.size()));
      body.put_bytes(attrs.bytes());
    }
    write_record(MrtRecord{timestamp, kTypeTableDumpV2,
                           kSubtypeRibIpv4Unicast, body.take()});
  }
}

void MrtWriter::write_update(const bgp::VantagePointId& peer,
                             const bgp::Route& route,
                             std::uint32_t timestamp) {
  ByteWriter body;
  body.put_u32(peer.asn);       // peer AS
  body.put_u32(0xfffd);         // local (collector) AS
  body.put_u16(0);              // interface index
  body.put_u16(1);              // AFI IPv4
  body.put_u32(peer.address);   // peer IP
  body.put_u32(0x0a0a0a0a);     // local IP

  BgpUpdate update;
  update.announced = {route.prefix};
  update.attrs.origin = route.origin_attr;
  update.attrs.as_path = route.path;
  update.attrs.next_hop = route.next_hop;
  update.attrs.med = route.med;
  update.attrs.communities = route.communities;
  update.attrs.ext_communities = route.ext_communities;
  update.attrs.large_communities = route.large_communities;
  encode_bgp_update(body, update);

  write_record(MrtRecord{timestamp, kTypeBgp4mp, kSubtypeBgp4mpMessageAs4,
                         body.take()});
}

void MrtWriter::write_state_change(const bgp::VantagePointId& peer,
                                   std::uint16_t old_state,
                                   std::uint16_t new_state,
                                   std::uint32_t timestamp) {
  ByteWriter body;
  body.put_u32(peer.asn);
  body.put_u32(0xfffd);        // local AS
  body.put_u16(0);             // interface index
  body.put_u16(1);             // AFI IPv4
  body.put_u32(peer.address);
  body.put_u32(0x0a0a0a0a);    // local IP
  body.put_u16(old_state);
  body.put_u16(new_state);
  write_record(MrtRecord{timestamp, kTypeBgp4mp, kSubtypeBgp4mpStateChangeAs4,
                         body.take()});
}

namespace {

/// Path attributes with a 2-octet AS_PATH (legacy TABLE_DUMP rows).
std::vector<std::uint8_t> encode_legacy_attributes(const bgp::Route& route) {
  ByteWriter out;
  out.put_u8(kFlagTransitive);
  out.put_u8(kAttrOrigin);
  out.put_u8(1);
  out.put_u8(static_cast<std::uint8_t>(route.origin_attr));

  ByteWriter path_body;
  for (const auto& seg : route.path.segments()) {
    path_body.put_u8(static_cast<std::uint8_t>(seg.type));
    path_body.put_u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (const bgp::Asn asn : seg.asns) {
      if (!bgp::fits_asn16(asn))
        throw MrtError("legacy TABLE_DUMP cannot carry 4-octet ASN " +
                       std::to_string(asn));
      path_body.put_u16(static_cast<std::uint16_t>(asn));
    }
  }
  out.put_u8(kFlagTransitive);
  out.put_u8(kAttrAsPath);
  out.put_u8(static_cast<std::uint8_t>(path_body.size()));
  out.put_bytes(path_body.bytes());

  out.put_u8(kFlagTransitive);
  out.put_u8(kAttrNextHop);
  out.put_u8(4);
  out.put_u32(route.next_hop);

  if (!route.communities.empty()) {
    ByteWriter body;
    for (const bgp::Community c : route.communities) body.put_u32(c.wire());
    out.put_u8(kFlagOptional | kFlagTransitive);
    out.put_u8(kAttrCommunities);
    if (body.size() > 0xff) {
      // fall back to extended length
      ByteWriter with_ext;
      with_ext.put_u8(kFlagOptional | kFlagTransitive | kFlagExtendedLength);
      with_ext.put_u8(kAttrCommunities);
      with_ext.put_u16(static_cast<std::uint16_t>(body.size()));
      with_ext.put_bytes(body.bytes());
      // replace the two bytes just written
      auto head = out.take();
      head.pop_back();
      head.pop_back();
      ByteWriter rebuilt;
      rebuilt.put_bytes(head);
      rebuilt.put_bytes(with_ext.bytes());
      return rebuilt.take();
    }
    out.put_u8(static_cast<std::uint8_t>(body.size()));
    out.put_bytes(body.bytes());
  }
  return out.take();
}

}  // namespace

void MrtWriter::write_legacy_rib(const std::vector<bgp::RibEntry>& entries,
                                 std::uint32_t timestamp) {
  std::uint16_t sequence = 0;
  for (const bgp::RibEntry& entry : entries) {
    if (!bgp::fits_asn16(entry.vantage_point.asn))
      throw MrtError("legacy TABLE_DUMP cannot carry 4-octet peer ASN");
    ByteWriter body;
    body.put_u16(0);  // view
    body.put_u16(sequence++);
    body.put_u32(entry.route.prefix.address());
    body.put_u8(entry.route.prefix.length());
    body.put_u8(1);  // status
    body.put_u32(timestamp);
    body.put_u32(entry.vantage_point.address);
    body.put_u16(static_cast<std::uint16_t>(entry.vantage_point.asn));
    const auto attrs = encode_legacy_attributes(entry.route);
    body.put_u16(static_cast<std::uint16_t>(attrs.size()));
    body.put_bytes(attrs);
    write_record(MrtRecord{timestamp, kTypeTableDump, kSubtypeTableDumpIpv4,
                           body.take()});
  }
}

bool MrtReader::next(MrtRecord& record) {
  std::uint8_t header[12];
  in_->read(reinterpret_cast<char*>(header), sizeof header);
  if (in_->gcount() == 0 && in_->eof()) return false;
  if (in_->gcount() != sizeof header)
    throw MrtError("truncated MRT header");
  ByteReader reader(header);
  record.timestamp = reader.get_u32();
  record.type = reader.get_u16();
  record.subtype = reader.get_u16();
  const std::uint32_t length = reader.get_u32();
  if (length > kMaxRecordSize) throw MrtError("oversized MRT record");
  record.body.resize(length);
  in_->read(reinterpret_cast<char*>(record.body.data()), length);
  if (static_cast<std::uint32_t>(in_->gcount()) != length)
    throw MrtError("truncated MRT record body");
  return true;
}

namespace {

/// Decodes a PEER_INDEX_TABLE body into a fresh peer table.
std::vector<bgp::VantagePointId> decode_peer_index_table(
    const MrtRecord& record) {
  std::vector<bgp::VantagePointId> peer_table;
  ByteReader body(record.body);
  body.skip(4);  // collector id
  const std::uint16_t name_len = body.get_u16();
  body.skip(name_len);
  const std::uint16_t count = body.get_u16();
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint8_t peer_type = body.get_u8();
    if ((peer_type & 0x01) != 0)
      throw MrtError("IPv6 peers not supported");
    body.skip(4);  // BGP id
    bgp::VantagePointId peer;
    peer.address = body.get_u32();
    peer.asn = (peer_type & kPeerTypeAs4) != 0
                   ? body.get_u32()
                   : body.get_u16();
    peer_table.push_back(peer);
  }
  return peer_table;
}

/// Decodes one non-PEER_INDEX_TABLE record into `entries`.  Pure function
/// of (record, peer_table) — the per-record unit shared by the sequential
/// and parallel readers, and what makes chunked decoding safe: workers
/// only ever read `peer_table` through an immutable snapshot.
void decode_data_record(const MrtRecord& record,
                        const std::vector<bgp::VantagePointId>& peer_table,
                        std::vector<bgp::RibEntry>& entries) {
  if (record.type == kTypeTableDumpV2 &&
      record.subtype == kSubtypeRibIpv4Unicast) {
    ByteReader body(record.body);
    body.skip(4);  // sequence
    const bgp::Prefix prefix = decode_nlri_prefix(body);
    const std::uint16_t count = body.get_u16();
    for (std::uint16_t i = 0; i < count; ++i) {
      const std::uint16_t peer_idx = body.get_u16();
      body.skip(4);  // originated time
      const std::uint16_t attr_len = body.get_u16();
      const PathAttributes attrs =
          decode_path_attributes(body, attr_len);
      if (peer_idx >= peer_table.size())
        throw MrtError("peer index out of range");
      bgp::RibEntry entry;
      entry.vantage_point = peer_table[peer_idx];
      entry.route.prefix = prefix;
      entry.route.path = attrs.as_path;
      entry.route.communities = attrs.communities;
      entry.route.ext_communities = attrs.ext_communities;
      entry.route.large_communities = attrs.large_communities;
      entry.route.next_hop = attrs.next_hop;
      entry.route.origin_attr = attrs.origin;
      entry.route.med = attrs.med;
      entry.route.local_pref = attrs.local_pref;
      entries.push_back(std::move(entry));
    }
  } else if (record.type == kTypeTableDump &&
             record.subtype == kSubtypeTableDumpIpv4) {
    ByteReader body(record.body);
    body.skip(2);  // view
    body.skip(2);  // sequence
    const std::uint32_t address = body.get_u32();
    const std::uint8_t length = body.get_u8();
    if (length > 32) throw MrtError("bad legacy prefix length");
    body.skip(1);  // status
    body.skip(4);  // originated time
    bgp::RibEntry entry;
    entry.vantage_point.address = body.get_u32();
    entry.vantage_point.asn = body.get_u16();
    const std::uint16_t attr_len = body.get_u16();
    const PathAttributes attrs =
        decode_path_attributes(body, attr_len, /*asn16=*/true);
    entry.route.prefix = bgp::Prefix(address, length);
    entry.route.path = attrs.as_path;
    entry.route.communities = attrs.communities;
    entry.route.ext_communities = attrs.ext_communities;
    entry.route.large_communities = attrs.large_communities;
    entry.route.next_hop = attrs.next_hop;
    entry.route.origin_attr = attrs.origin;
    entry.route.med = attrs.med;
    entry.route.local_pref = attrs.local_pref;
    entries.push_back(std::move(entry));
  } else if (record.type == kTypeBgp4mp &&
             (record.subtype == kSubtypeBgp4mpStateChange ||
              record.subtype == kSubtypeBgp4mpStateChangeAs4)) {
    // Session state transitions carry no routes; skipped by design.
  } else if (record.type == kTypeBgp4mp &&
             record.subtype == kSubtypeBgp4mpMessageAs4) {
    ByteReader body(record.body);
    bgp::VantagePointId peer;
    peer.asn = body.get_u32();
    body.skip(4);  // local AS
    body.skip(2);  // interface
    const std::uint16_t afi = body.get_u16();
    if (afi != 1) return;  // IPv4 only
    peer.address = body.get_u32();
    body.skip(4);  // local IP
    const BgpUpdate update = decode_bgp_message(body);
    for (const bgp::Prefix& prefix : update.announced) {
      bgp::RibEntry entry;
      entry.vantage_point = peer;
      entry.route.prefix = prefix;
      entry.route.path = update.attrs.as_path;
      entry.route.communities = update.attrs.communities;
      entry.route.ext_communities = update.attrs.ext_communities;
      entry.route.large_communities = update.attrs.large_communities;
      entry.route.next_hop = update.attrs.next_hop;
      entry.route.origin_attr = update.attrs.origin;
      entry.route.med = update.attrs.med;
      entry.route.local_pref = update.attrs.local_pref;
      entries.push_back(std::move(entry));
    }
  }
  // Other record types: skipped.
}

bool is_peer_index_table(const MrtRecord& record) noexcept {
  return record.type == kTypeTableDumpV2 &&
         record.subtype == kSubtypePeerIndexTable;
}

// --- tolerant framing ---------------------------------------------------

[[nodiscard]] std::uint16_t peek_u16(std::span<const std::uint8_t> data,
                                     std::size_t pos) noexcept {
  return static_cast<std::uint16_t>((data[pos] << 8) | data[pos + 1]);
}

[[nodiscard]] std::uint32_t peek_u32(std::span<const std::uint8_t> data,
                                     std::size_t pos) noexcept {
  return (static_cast<std::uint32_t>(data[pos]) << 24) |
         (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
         (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
         static_cast<std::uint32_t>(data[pos + 3]);
}

/// The resync plausibility test: type/subtype pairs real archives carry
/// (RFC 6396 plus the deprecated BGP4MP_ET sibling) with a sane length.
/// Deliberately broader than what decode_data_record understands — unknown-
/// but-standard records frame fine and are skipped, exactly as in strict
/// mode; anything outside this set is indistinguishable from garbage
/// without trusting a possibly-corrupt length field.
[[nodiscard]] bool plausible_record_header(std::uint16_t type,
                                           std::uint16_t subtype,
                                           std::uint32_t length) noexcept {
  constexpr std::uint16_t kTypeBgp4mpEt = 17;
  if (length > kMaxRecordSize) return false;
  switch (type) {
    case kTypeTableDump:
      return subtype >= 1 && subtype <= 2;  // IPv4 / IPv6 rows
    case kTypeTableDumpV2:
      return subtype >= 1 && subtype <= 6;  // peer table .. RIB_GENERIC
    case kTypeBgp4mp:
    case kTypeBgp4mpEt:
      return subtype <= 11;
    default:
      return false;
  }
}

/// Frames records off an in-memory MRT image, skipping and resynchronizing
/// around framing damage (truncated headers, implausible or oversized
/// records, length fields pointing past the image).  Framing failures are
/// recorded into the shared report; the caller enforces the error budget.
class TolerantFramer {
 public:
  struct Framed {
    MrtRecord record;
    std::uint64_t offset = 0;
    std::uint64_t index = 0;
  };

  TolerantFramer(std::span<const std::uint8_t> data,
                 const DecodeOptions& options, DecodeReport& report) noexcept
      : data_(data), options_(&options), report_(&report) {}

  /// Frames the next record; false at end of data.  Throws
  /// DecodeBudgetError when framing failures alone exceed the budget.
  [[nodiscard]] bool next(Framed& out) {
    for (;;) {
      if (pos_ >= data_.size()) return false;
      const std::size_t remaining = data_.size() - pos_;
      if (remaining < 12) {
        report_->add_error({pos_, index_++, 0, "truncated MRT header"});
        report_->bytes_skipped += remaining;
        pos_ = data_.size();
        check_budget();
        return false;
      }
      const std::uint16_t type = peek_u16(data_, pos_ + 4);
      const std::uint16_t subtype = peek_u16(data_, pos_ + 6);
      const std::uint32_t length = peek_u32(data_, pos_ + 8);
      if (!plausible_record_header(type, subtype, length) ||
          pos_ + 12 + length > data_.size()) {
        fail_and_resync(type, subtype, length);
        check_budget();
        continue;
      }
      const std::size_t end = pos_ + 12 + length;
      if (!chains_at(end)) {
        // The claimed end does not land on a record boundary.  Either this
        // record's length field lies (a splice tore bytes out, or the
        // length was rewritten) or the *next* record's header is damaged.
        // A plausible boundary strictly inside the claimed body settles
        // it: the length lied — reject this record and resync there, which
        // is what rescues the shifted-but-intact records after a splice.
        // Otherwise trust this record; the next call handles the damage.
        const std::size_t rescue = scan_for_header(pos_ + 1);
        if (rescue < end) {
          report_->add_error({pos_, index_++, length,
                              "MRT record length overruns next record"});
          report_->bytes_skipped += rescue - pos_;
          report_->add_resync(rescue - pos_);
          pos_ = rescue;
          check_budget();
          continue;
        }
      }
      out.record.timestamp = peek_u32(data_, pos_);
      out.record.type = type;
      out.record.subtype = subtype;
      out.record.body.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_ + 12),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + 12 + length));
      out.offset = pos_;
      out.index = index_++;
      pos_ += 12 + length;
      return true;
    }
  }

 private:
  /// True when `end` is a credible record boundary: exact end of data, or
  /// the start of another plausible header.
  [[nodiscard]] bool chains_at(std::size_t end) const noexcept {
    if (end == data_.size()) return true;
    return end + 12 <= data_.size() &&
           plausible_record_header(peek_u16(data_, end + 4),
                                   peek_u16(data_, end + 6),
                                   peek_u32(data_, end + 8));
  }

  void check_budget() const {
    if (report_->over_budget(*options_)) {
      report_->budget_exhausted = true;
      throw DecodeBudgetError(
          "MRT decode error budget exceeded (" + report_->summary() + ")",
          *report_);
    }
  }

  void fail_and_resync(std::uint16_t type, std::uint16_t subtype,
                       std::uint32_t length) {
    const char* reason;
    if (length > kMaxRecordSize) {
      reason = "oversized MRT record";
    } else if (!plausible_record_header(type, subtype, length)) {
      reason = "implausible MRT record header";
    } else {
      reason = "truncated MRT record body";
    }
    report_->add_error({pos_, index_++, length, reason});
    const std::size_t next = scan_for_header(pos_ + 1);
    report_->bytes_skipped += next - pos_;
    report_->add_resync(next - pos_);
    pos_ = next;
  }

  /// First offset >= `from` that looks like a record boundary: plausible
  /// header whose body fits and that chains into end-of-data or another
  /// plausible header.  The two-record lookahead makes false positives
  /// inside record bodies require two chained coincidences.
  [[nodiscard]] std::size_t scan_for_header(std::size_t from) const noexcept {
    for (std::size_t pos = from; pos + 12 <= data_.size(); ++pos) {
      const std::uint32_t length = peek_u32(data_, pos + 8);
      if (!plausible_record_header(peek_u16(data_, pos + 4),
                                   peek_u16(data_, pos + 6), length))
        continue;
      const std::size_t end = pos + 12 + length;
      if (end > data_.size()) continue;
      if (end == data_.size()) return pos;
      if (end + 12 <= data_.size() &&
          plausible_record_header(peek_u16(data_, end + 4),
                                  peek_u16(data_, end + 6),
                                  peek_u32(data_, end + 8)))
        return pos;
    }
    return data_.size();
  }

  std::span<const std::uint8_t> data_;
  const DecodeOptions* options_;
  DecodeReport* report_;
  std::size_t pos_ = 0;
  std::uint64_t index_ = 0;
};

/// Body-decode failure bookkeeping shared by the sequential and chunked
/// tolerant paths (identical accounting keeps their reports bit-equal).
void record_body_failure(DecodeReport& report, const TolerantFramer::Framed& framed,
                         const char* what) {
  report.add_error({framed.offset, framed.index,
                    static_cast<std::uint32_t>(framed.record.body.size()),
                    what});
  report.bytes_skipped += 12 + framed.record.body.size();
}

[[noreturn]] void throw_budget(DecodeReport& report) {
  report.budget_exhausted = true;
  throw DecodeBudgetError(
      "MRT decode error budget exceeded (" + report.summary() + ")", report);
}

/// End-of-stream budget check: this is where the fractional budget (which
/// needs the full-stream denominator) is enforced.
void check_final_budget(DecodeReport& report, const DecodeOptions& options) {
  if (report.over_final_budget(options)) throw_budget(report);
}

[[nodiscard]] std::vector<std::uint8_t> slurp(std::istream& in) {
  std::vector<std::uint8_t> bytes;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0)
    bytes.insert(bytes.end(), buffer, buffer + in.gcount());
  if (in.bad()) throw MrtError("failed to read MRT stream");
  return bytes;
}

std::vector<bgp::RibEntry> read_rib_entries_tolerant(
    std::span<const std::uint8_t> data, const DecodeOptions& options,
    DecodeReport& report) {
  std::vector<bgp::RibEntry> entries;
  std::vector<bgp::VantagePointId> peer_table;
  TolerantFramer framer(data, options, report);
  TolerantFramer::Framed framed;
  while (framer.next(framed)) {
    try {
      if (is_peer_index_table(framed.record))
        peer_table = decode_peer_index_table(framed.record);
      else
        decode_data_record(framed.record, peer_table, entries);
      ++report.records_ok;
    } catch (const MrtError& error) {
      record_body_failure(report, framed, error.what());
      if (report.over_budget(options)) throw_budget(report);
    }
  }
  check_final_budget(report, options);
  return entries;
}

// Records per decode task: large enough to amortize scheduling, small
// enough to keep all workers busy on typical RIB chunk sizes.  Shared by
// the strict and tolerant parallel readers so chunk boundaries (and hence
// tolerant merge order) do not depend on which path framed the stream.
constexpr std::size_t kChunkRecords = 64;

/// Tolerant twin of the strict parallel reader below: the calling thread
/// frames with TolerantFramer (identical resync decisions to the
/// sequential tolerant reader), workers decode chunks into chunk-local
/// {entries, report} pairs and never throw, and chunk reports merge into
/// `report` in submission order.  On a budget trip every in-flight chunk
/// is drained before DecodeBudgetError is raised, so sibling futures are
/// never abandoned and the final report is complete.
std::vector<bgp::RibEntry> read_rib_entries_parallel_tolerant(
    std::span<const std::uint8_t> data, util::ThreadPool& pool,
    const DecodeOptions& options, DecodeReport& report) {
  struct ChunkOutcome {
    std::vector<bgp::RibEntry> entries;
    DecodeReport report;
  };
  const std::size_t max_in_flight =
      static_cast<std::size_t>(pool.size()) * 2 + 2;

  std::vector<bgp::RibEntry> entries;
  std::deque<std::future<ChunkOutcome>> in_flight;
  auto peers = std::make_shared<const std::vector<bgp::VantagePointId>>();
  // Budget trips are deferred: the throw happens only after the drain
  // below, never while futures are still in flight.
  bool budget_tripped = false;

  auto drain_front = [&]() {
    ChunkOutcome outcome = in_flight.front().get();
    in_flight.pop_front();
    entries.insert(entries.end(),
                   std::make_move_iterator(outcome.entries.begin()),
                   std::make_move_iterator(outcome.entries.end()));
    report.merge(outcome.report);
    if (report.over_budget(options)) budget_tripped = true;
  };
  auto submit_chunk = [&](std::vector<TolerantFramer::Framed>&& frames) {
    in_flight.push_back(
        pool.submit([frames = std::move(frames), snapshot = peers]() {
          ChunkOutcome outcome;
          for (const TolerantFramer::Framed& framed : frames) {
            try {
              decode_data_record(framed.record, *snapshot, outcome.entries);
              ++outcome.report.records_ok;
            } catch (const MrtError& error) {
              record_body_failure(outcome.report, framed, error.what());
            }
          }
          return outcome;
        }));
    while (in_flight.size() >= max_in_flight) drain_front();
  };

  TolerantFramer framer(data, options, report);
  std::vector<TolerantFramer::Framed> batch;
  try {
    TolerantFramer::Framed framed;
    while (!budget_tripped && framer.next(framed)) {
      if (is_peer_index_table(framed.record)) {
        if (!batch.empty()) {
          submit_chunk(std::move(batch));
          batch = {};
        }
        try {
          peers = std::make_shared<const std::vector<bgp::VantagePointId>>(
              decode_peer_index_table(framed.record));
          ++report.records_ok;
        } catch (const MrtError& error) {
          // Keep the previous peer-table snapshot, exactly as the
          // sequential tolerant reader does.
          record_body_failure(report, framed, error.what());
          if (report.over_budget(options)) budget_tripped = true;
        }
        continue;
      }
      batch.push_back(std::move(framed));
      if (batch.size() >= kChunkRecords) {
        submit_chunk(std::move(batch));
        batch = {};
      }
    }
  } catch (const DecodeBudgetError&) {
    // Framing-side budget trip; the shared report already reflects it.
    budget_tripped = true;
  }
  if (!budget_tripped && !batch.empty()) submit_chunk(std::move(batch));
  while (!in_flight.empty()) drain_front();
  if (budget_tripped) throw_budget(report);
  check_final_budget(report, options);
  return entries;
}

std::vector<bgp::RibEntry> read_rib_entries_parallel_strict(
    std::istream& in, util::ThreadPool& pool, DecodeReport& report) {
  const std::size_t max_in_flight =
      static_cast<std::size_t>(pool.size()) * 2 + 2;

  std::vector<bgp::RibEntry> entries;
  // The bounded queue: completed-or-running decode tasks in submission
  // order.  Draining the front blocks until that chunk is decoded (and
  // rethrows its MrtError, preserving chunk order for errors).
  std::deque<std::future<std::vector<bgp::RibEntry>>> in_flight;
  auto peers = std::make_shared<const std::vector<bgp::VantagePointId>>();

  auto drain_front = [&entries, &in_flight]() {
    std::vector<bgp::RibEntry> decoded = in_flight.front().get();
    in_flight.pop_front();
    entries.insert(entries.end(), std::make_move_iterator(decoded.begin()),
                   std::make_move_iterator(decoded.end()));
  };
  auto submit_chunk = [&](std::vector<MrtRecord>&& records) {
    // The task owns its records and peer-table snapshot outright, so it
    // stays valid even if this function throws and abandons the future.
    in_flight.push_back(
        pool.submit([records = std::move(records), snapshot = peers]() {
          std::vector<bgp::RibEntry> decoded;
          for (const MrtRecord& record : records)
            decode_data_record(record, *snapshot, decoded);
          return decoded;
        }));
    while (in_flight.size() >= max_in_flight) drain_front();
  };

  MrtReader reader(in);
  MrtRecord record;
  std::vector<MrtRecord> batch;
  while (reader.next(record)) {
    ++report.records_ok;
    if (is_peer_index_table(record)) {
      // Peer-table switch: flush so no chunk spans two tables, then
      // publish a fresh immutable snapshot for subsequent chunks.
      if (!batch.empty()) {
        submit_chunk(std::move(batch));
        batch = {};
      }
      peers = std::make_shared<const std::vector<bgp::VantagePointId>>(
          decode_peer_index_table(record));
      continue;
    }
    batch.push_back(std::move(record));
    record = {};
    if (batch.size() >= kChunkRecords) {
      submit_chunk(std::move(batch));
      batch = {};
    }
  }
  if (!batch.empty()) submit_chunk(std::move(batch));
  while (!in_flight.empty()) drain_front();
  return entries;
}

}  // namespace

std::vector<bgp::RibEntry> read_rib_entries(std::istream& in) {
  return read_rib_entries(in, DecodeOptions{});
}

std::vector<bgp::RibEntry> read_rib_entries(std::istream& in,
                                            const DecodeOptions& options,
                                            DecodeReport* report) {
  DecodeReport local;
  try {
    std::vector<bgp::RibEntry> entries;
    if (options.tolerant()) {
      const std::vector<std::uint8_t> bytes = slurp(in);
      entries = read_rib_entries_tolerant(bytes, options, local);
    } else {
      std::vector<bgp::VantagePointId> peer_table;
      MrtReader reader(in);
      MrtRecord record;
      while (reader.next(record)) {
        if (is_peer_index_table(record))
          peer_table = decode_peer_index_table(record);
        else
          decode_data_record(record, peer_table, entries);
        ++local.records_ok;
      }
    }
    if (report) *report = std::move(local);
    return entries;
  } catch (...) {
    if (report) *report = std::move(local);
    throw;
  }
}

std::vector<bgp::RibEntry> read_rib_entries_parallel(std::istream& in,
                                                     util::ThreadPool& pool) {
  return read_rib_entries_parallel(in, pool, DecodeOptions{});
}

std::vector<bgp::RibEntry> read_rib_entries_parallel(std::istream& in,
                                                     util::ThreadPool& pool,
                                                     const DecodeOptions& options,
                                                     DecodeReport* report) {
  DecodeReport local;
  try {
    std::vector<bgp::RibEntry> entries;
    if (options.tolerant()) {
      const std::vector<std::uint8_t> bytes = slurp(in);
      entries = read_rib_entries_parallel_tolerant(bytes, pool, options, local);
    } else {
      entries = read_rib_entries_parallel_strict(in, pool, local);
    }
    if (report) *report = std::move(local);
    return entries;
  } catch (...) {
    if (report) *report = std::move(local);
    throw;
  }
}

std::vector<bgp::RibEntry> read_rib_entries(
    const std::vector<std::uint8_t>& bytes) {
  return read_rib_entries(std::span<const std::uint8_t>(bytes),
                          DecodeOptions{});
}

std::vector<bgp::RibEntry> read_rib_entries(std::span<const std::uint8_t> bytes,
                                            const DecodeOptions& options,
                                            DecodeReport* report) {
  if (options.tolerant()) {
    DecodeReport local;
    try {
      std::vector<bgp::RibEntry> entries =
          read_rib_entries_tolerant(bytes, options, local);
      if (report) *report = std::move(local);
      return entries;
    } catch (...) {
      if (report) *report = std::move(local);
      throw;
    }
  }
  std::istringstream in(
      bytes.empty() ? std::string()
                    : std::string(reinterpret_cast<const char*>(bytes.data()),
                                  bytes.size()));
  return read_rib_entries(in, options, report);
}

}  // namespace bgpintent::mrt
