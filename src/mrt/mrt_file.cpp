#include "mrt/mrt_file.hpp"

#include "bgp/asn.hpp"
#include "util/thread_pool.hpp"

#include <deque>
#include <future>
#include <istream>
#include <map>
#include <memory>
#include <ostream>

namespace bgpintent::mrt {

namespace {

constexpr std::uint8_t kPeerTypeAs4 = 0x02;  // RFC 6396 §4.3.1

/// Builds the PEER_INDEX_TABLE body; returns peer -> index.
std::map<bgp::VantagePointId, std::uint16_t> build_peer_table(
    ByteWriter& body, const std::vector<bgp::RibEntry>& entries,
    std::uint32_t collector_id) {
  std::map<bgp::VantagePointId, std::uint16_t> index;
  for (const auto& entry : entries) index.emplace(entry.vantage_point, 0);
  std::uint16_t next = 0;
  for (auto& [peer, idx] : index) idx = next++;

  body.put_u32(collector_id);
  body.put_u16(0);  // empty view name
  body.put_u16(static_cast<std::uint16_t>(index.size()));
  for (const auto& [peer, idx] : index) {
    body.put_u8(kPeerTypeAs4);      // IPv4 peer, 4-octet ASN
    body.put_u32(peer.address);     // peer BGP id (we reuse the address)
    body.put_u32(peer.address);     // peer IP
    body.put_u32(peer.asn);
  }
  return index;
}

}  // namespace

void MrtWriter::write_record(const MrtRecord& record) {
  ByteWriter header;
  header.put_u32(record.timestamp);
  header.put_u16(record.type);
  header.put_u16(record.subtype);
  header.put_u32(static_cast<std::uint32_t>(record.body.size()));
  out_->write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.size()));
  out_->write(reinterpret_cast<const char*>(record.body.data()),
              static_cast<std::streamsize>(record.body.size()));
  if (!*out_) throw MrtError("stream write failed");
}

void MrtWriter::write_rib_snapshot(const std::vector<bgp::RibEntry>& entries,
                                   std::uint32_t collector_id,
                                   std::uint32_t timestamp) {
  ByteWriter peer_body;
  const auto peer_index = build_peer_table(peer_body, entries, collector_id);
  write_record(MrtRecord{timestamp, kTypeTableDumpV2, kSubtypePeerIndexTable,
                         peer_body.take()});

  // Group entries by prefix, preserving prefix order.
  std::map<bgp::Prefix, std::vector<const bgp::RibEntry*>> by_prefix;
  for (const auto& entry : entries)
    by_prefix[entry.route.prefix].push_back(&entry);

  std::uint32_t sequence = 0;
  for (const auto& [prefix, rows] : by_prefix) {
    ByteWriter body;
    body.put_u32(sequence++);
    encode_nlri_prefix(body, prefix);
    body.put_u16(static_cast<std::uint16_t>(rows.size()));
    for (const bgp::RibEntry* row : rows) {
      body.put_u16(peer_index.at(row->vantage_point));
      body.put_u32(timestamp);  // originated time
      ByteWriter attrs;
      PathAttributes pa;
      pa.origin = row->route.origin_attr;
      pa.as_path = row->route.path;
      pa.next_hop = row->route.next_hop;
      pa.med = row->route.med;
      pa.communities = row->route.communities;
      pa.ext_communities = row->route.ext_communities;
      pa.large_communities = row->route.large_communities;
      encode_path_attributes(attrs, pa);
      body.put_u16(static_cast<std::uint16_t>(attrs.size()));
      body.put_bytes(attrs.bytes());
    }
    write_record(MrtRecord{timestamp, kTypeTableDumpV2,
                           kSubtypeRibIpv4Unicast, body.take()});
  }
}

void MrtWriter::write_update(const bgp::VantagePointId& peer,
                             const bgp::Route& route,
                             std::uint32_t timestamp) {
  ByteWriter body;
  body.put_u32(peer.asn);       // peer AS
  body.put_u32(0xfffd);         // local (collector) AS
  body.put_u16(0);              // interface index
  body.put_u16(1);              // AFI IPv4
  body.put_u32(peer.address);   // peer IP
  body.put_u32(0x0a0a0a0a);     // local IP

  BgpUpdate update;
  update.announced = {route.prefix};
  update.attrs.origin = route.origin_attr;
  update.attrs.as_path = route.path;
  update.attrs.next_hop = route.next_hop;
  update.attrs.med = route.med;
  update.attrs.communities = route.communities;
  update.attrs.ext_communities = route.ext_communities;
  update.attrs.large_communities = route.large_communities;
  encode_bgp_update(body, update);

  write_record(MrtRecord{timestamp, kTypeBgp4mp, kSubtypeBgp4mpMessageAs4,
                         body.take()});
}

void MrtWriter::write_withdraw(const bgp::VantagePointId& peer,
                               std::span<const bgp::Prefix> prefixes,
                               std::uint32_t timestamp) {
  ByteWriter body;
  body.put_u32(peer.asn);       // peer AS
  body.put_u32(0xfffd);         // local (collector) AS
  body.put_u16(0);              // interface index
  body.put_u16(1);              // AFI IPv4
  body.put_u32(peer.address);   // peer IP
  body.put_u32(0x0a0a0a0a);     // local IP

  BgpUpdate update;
  update.withdrawn.assign(prefixes.begin(), prefixes.end());
  encode_bgp_update(body, update);

  write_record(MrtRecord{timestamp, kTypeBgp4mp, kSubtypeBgp4mpMessageAs4,
                         body.take()});
}

void MrtWriter::write_state_change(const bgp::VantagePointId& peer,
                                   std::uint16_t old_state,
                                   std::uint16_t new_state,
                                   std::uint32_t timestamp) {
  ByteWriter body;
  body.put_u32(peer.asn);
  body.put_u32(0xfffd);        // local AS
  body.put_u16(0);             // interface index
  body.put_u16(1);             // AFI IPv4
  body.put_u32(peer.address);
  body.put_u32(0x0a0a0a0a);    // local IP
  body.put_u16(old_state);
  body.put_u16(new_state);
  write_record(MrtRecord{timestamp, kTypeBgp4mp, kSubtypeBgp4mpStateChangeAs4,
                         body.take()});
}

namespace {

/// Path attributes with a 2-octet AS_PATH (legacy TABLE_DUMP rows).
std::vector<std::uint8_t> encode_legacy_attributes(const bgp::Route& route) {
  ByteWriter out;
  out.put_u8(kFlagTransitive);
  out.put_u8(kAttrOrigin);
  out.put_u8(1);
  out.put_u8(static_cast<std::uint8_t>(route.origin_attr));

  ByteWriter path_body;
  for (const auto& seg : route.path.segments()) {
    path_body.put_u8(static_cast<std::uint8_t>(seg.type));
    path_body.put_u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (const bgp::Asn asn : seg.asns) {
      if (!bgp::fits_asn16(asn))
        throw MrtError("legacy TABLE_DUMP cannot carry 4-octet ASN " +
                       std::to_string(asn));
      path_body.put_u16(static_cast<std::uint16_t>(asn));
    }
  }
  out.put_u8(kFlagTransitive);
  out.put_u8(kAttrAsPath);
  out.put_u8(static_cast<std::uint8_t>(path_body.size()));
  out.put_bytes(path_body.bytes());

  out.put_u8(kFlagTransitive);
  out.put_u8(kAttrNextHop);
  out.put_u8(4);
  out.put_u32(route.next_hop);

  if (!route.communities.empty()) {
    ByteWriter body;
    for (const bgp::Community c : route.communities) body.put_u32(c.wire());
    out.put_u8(kFlagOptional | kFlagTransitive);
    out.put_u8(kAttrCommunities);
    if (body.size() > 0xff) {
      // fall back to extended length
      ByteWriter with_ext;
      with_ext.put_u8(kFlagOptional | kFlagTransitive | kFlagExtendedLength);
      with_ext.put_u8(kAttrCommunities);
      with_ext.put_u16(static_cast<std::uint16_t>(body.size()));
      with_ext.put_bytes(body.bytes());
      // replace the two bytes just written
      auto head = out.take();
      head.pop_back();
      head.pop_back();
      ByteWriter rebuilt;
      rebuilt.put_bytes(head);
      rebuilt.put_bytes(with_ext.bytes());
      return rebuilt.take();
    }
    out.put_u8(static_cast<std::uint8_t>(body.size()));
    out.put_bytes(body.bytes());
  }
  return out.take();
}

}  // namespace

void MrtWriter::write_legacy_rib(const std::vector<bgp::RibEntry>& entries,
                                 std::uint32_t timestamp) {
  std::uint16_t sequence = 0;
  for (const bgp::RibEntry& entry : entries) {
    if (!bgp::fits_asn16(entry.vantage_point.asn))
      throw MrtError("legacy TABLE_DUMP cannot carry 4-octet peer ASN");
    ByteWriter body;
    body.put_u16(0);  // view
    body.put_u16(sequence++);
    body.put_u32(entry.route.prefix.address());
    body.put_u8(entry.route.prefix.length());
    body.put_u8(1);  // status
    body.put_u32(timestamp);
    body.put_u32(entry.vantage_point.address);
    body.put_u16(static_cast<std::uint16_t>(entry.vantage_point.asn));
    const auto attrs = encode_legacy_attributes(entry.route);
    body.put_u16(static_cast<std::uint16_t>(attrs.size()));
    body.put_bytes(attrs);
    write_record(MrtRecord{timestamp, kTypeTableDump, kSubtypeTableDumpIpv4,
                           body.take()});
  }
}

bool MrtReader::read_record(std::uint32_t& timestamp, std::uint16_t& type,
                            std::uint16_t& subtype,
                            std::vector<std::uint8_t>& body) {
  std::uint8_t header[12];
  in_->read(reinterpret_cast<char*>(header), sizeof header);
  if (in_->gcount() == 0 && in_->eof()) return false;
  if (in_->gcount() != sizeof header)
    throw MrtError("truncated MRT header");
  ByteReader reader(header);
  timestamp = reader.get_u32();
  type = reader.get_u16();
  subtype = reader.get_u16();
  const std::uint32_t length = reader.get_u32();
  if (length > kMaxRecordSize) throw MrtError("oversized MRT record");
  body.resize(length);
  in_->read(reinterpret_cast<char*>(body.data()), length);
  if (static_cast<std::uint32_t>(in_->gcount()) != length)
    throw MrtError("truncated MRT record body");
  return true;
}

bool MrtReader::next(MrtRecord& record) {
  return read_record(record.timestamp, record.type, record.subtype,
                     record.body);
}

bool MrtReader::next_view(RecordView& record) {
  if (!read_record(record.timestamp, record.type, record.subtype, scratch_))
    return false;
  record.body = scratch_;
  return true;
}

namespace {

/// The materializing sink: appends each scratch row to a vector, exactly
/// what the historical readers produced (one RibEntry allocation per row).
class VectorSink final : public EntrySink {
 public:
  explicit VectorSink(std::vector<bgp::RibEntry>& out) noexcept : out_(&out) {}

  void on_entry(bgp::RibEntry& entry) override {
    out_->push_back(std::move(entry));
  }

 private:
  std::vector<bgp::RibEntry>* out_;
};

[[nodiscard]] RecordView as_view(const MrtRecord& record) noexcept {
  return RecordView{record.timestamp, record.type, record.subtype,
                    record.body};
}

/// Strict decode of one istream, record by record through the reader's
/// scratch body — bounded memory regardless of stream length.
void decode_strict_stream(std::istream& in, EntrySink& sink,
                          DecodeReport& report) {
  std::vector<bgp::VantagePointId> peer_table;
  MrtReader reader(in);
  RecordView record;
  RowScratch scratch;
  while (reader.next_view(record)) {
    if (is_peer_index_table(record))
      peer_table = decode_peer_index_table(record);
    else
      decode_data_record(record, peer_table, sink, scratch);
    ++report.records_ok;
  }
}

/// Strict decode of one in-memory image: zero-copy framing, same errors
/// and counters as decode_strict_stream.
void decode_strict_image(std::span<const std::uint8_t> data, EntrySink& sink,
                         DecodeReport& report) {
  std::vector<bgp::VantagePointId> peer_table;
  StrictFramer framer(data);
  RecordView record;
  RowScratch scratch;
  while (framer.next(record)) {
    if (is_peer_index_table(record))
      peer_table = decode_peer_index_table(record);
    else
      decode_data_record(record, peer_table, sink, scratch);
    ++report.records_ok;
  }
}

/// Tolerant decode of one in-memory image.  Rows decoded before a
/// mid-record failure stay emitted (matching the historical materializing
/// reader, which appended as it went).
void decode_tolerant_image(std::span<const std::uint8_t> data, EntrySink& sink,
                           const DecodeOptions& options, DecodeReport& report) {
  std::vector<bgp::VantagePointId> peer_table;
  TolerantFramer framer(data, options, report);
  TolerantFramer::Framed framed;
  RowScratch scratch;
  while (framer.next(framed)) {
    try {
      if (is_peer_index_table(framed.record))
        peer_table = decode_peer_index_table(framed.record);
      else
        decode_data_record(framed.record, peer_table, sink, scratch);
      ++report.records_ok;
    } catch (const MrtError& error) {
      record_body_failure(report, framed, error.what());
      if (report.over_budget(options)) throw_budget(report);
    }
  }
  check_final_budget(report, options);
}

void decode_image(std::span<const std::uint8_t> data, EntrySink& sink,
                  const DecodeOptions& options, DecodeReport& report) {
  if (options.tolerant())
    decode_tolerant_image(data, sink, options, report);
  else
    decode_strict_image(data, sink, report);
}

/// Tolerant twin of the strict parallel reader below: the calling thread
/// frames with TolerantFramer (identical resync decisions to the
/// sequential tolerant reader), workers decode chunks into chunk-local
/// {entries, report} pairs and never throw, and chunk reports merge into
/// `report` in submission order.  On a budget trip every in-flight chunk
/// is drained before DecodeBudgetError is raised, so sibling futures are
/// never abandoned and the final report is complete.
///
/// Framed bodies are zero-copy views into `data`, which must stay alive
/// until this returns (it always drains in-flight chunks before then).
std::vector<bgp::RibEntry> read_rib_entries_parallel_tolerant(
    std::span<const std::uint8_t> data, util::ThreadPool& pool,
    const DecodeOptions& options, DecodeReport& report) {
  struct ChunkOutcome {
    std::vector<bgp::RibEntry> entries;
    DecodeReport report;
  };
  const std::size_t max_in_flight =
      static_cast<std::size_t>(pool.size()) * 2 + 2;

  std::vector<bgp::RibEntry> entries;
  std::deque<std::future<ChunkOutcome>> in_flight;
  auto peers = std::make_shared<const std::vector<bgp::VantagePointId>>();
  // Budget trips are deferred: the throw happens only after the drain
  // below, never while futures are still in flight.
  bool budget_tripped = false;

  auto drain_front = [&]() {
    ChunkOutcome outcome = in_flight.front().get();
    in_flight.pop_front();
    entries.insert(entries.end(),
                   std::make_move_iterator(outcome.entries.begin()),
                   std::make_move_iterator(outcome.entries.end()));
    report.merge(outcome.report);
    if (report.over_budget(options)) budget_tripped = true;
  };
  auto submit_chunk = [&](std::vector<TolerantFramer::Framed>&& frames) {
    in_flight.push_back(
        pool.submit([frames = std::move(frames), snapshot = peers]() {
          ChunkOutcome outcome;
          VectorSink sink(outcome.entries);
          RowScratch scratch;
          for (const TolerantFramer::Framed& framed : frames) {
            try {
              decode_data_record(framed.record, *snapshot, sink, scratch);
              ++outcome.report.records_ok;
            } catch (const MrtError& error) {
              record_body_failure(outcome.report, framed, error.what());
            }
          }
          return outcome;
        }));
    while (in_flight.size() >= max_in_flight) drain_front();
  };

  TolerantFramer framer(data, options, report);
  std::vector<TolerantFramer::Framed> batch;
  try {
    TolerantFramer::Framed framed;
    while (!budget_tripped && framer.next(framed)) {
      if (is_peer_index_table(framed.record)) {
        if (!batch.empty()) {
          submit_chunk(std::move(batch));
          batch = {};
        }
        try {
          peers = std::make_shared<const std::vector<bgp::VantagePointId>>(
              decode_peer_index_table(framed.record));
          ++report.records_ok;
        } catch (const MrtError& error) {
          // Keep the previous peer-table snapshot, exactly as the
          // sequential tolerant reader does.
          record_body_failure(report, framed, error.what());
          if (report.over_budget(options)) budget_tripped = true;
        }
        continue;
      }
      batch.push_back(framed);
      if (batch.size() >= kChunkRecords) {
        submit_chunk(std::move(batch));
        batch = {};
      }
    }
  } catch (const DecodeBudgetError&) {
    // Framing-side budget trip; the shared report already reflects it.
    budget_tripped = true;
  }
  if (!budget_tripped && !batch.empty()) submit_chunk(std::move(batch));
  while (!in_flight.empty()) drain_front();
  if (budget_tripped) throw_budget(report);
  check_final_budget(report, options);
  return entries;
}

std::vector<bgp::RibEntry> read_rib_entries_parallel_strict(
    std::istream& in, util::ThreadPool& pool, DecodeReport& report) {
  const std::size_t max_in_flight =
      static_cast<std::size_t>(pool.size()) * 2 + 2;

  std::vector<bgp::RibEntry> entries;
  // The bounded queue: completed-or-running decode tasks in submission
  // order.  Draining the front blocks until that chunk is decoded (and
  // rethrows its MrtError, preserving chunk order for errors).
  std::deque<std::future<std::vector<bgp::RibEntry>>> in_flight;
  auto peers = std::make_shared<const std::vector<bgp::VantagePointId>>();

  auto drain_front = [&entries, &in_flight]() {
    std::vector<bgp::RibEntry> decoded = in_flight.front().get();
    in_flight.pop_front();
    entries.insert(entries.end(), std::make_move_iterator(decoded.begin()),
                   std::make_move_iterator(decoded.end()));
  };
  auto submit_chunk = [&](std::vector<MrtRecord>&& records) {
    // The task owns its records and peer-table snapshot outright, so it
    // stays valid even if this function throws and abandons the future.
    in_flight.push_back(
        pool.submit([records = std::move(records), snapshot = peers]() {
          std::vector<bgp::RibEntry> decoded;
          VectorSink sink(decoded);
          RowScratch scratch;
          for (const MrtRecord& record : records)
            decode_data_record(as_view(record), *snapshot, sink, scratch);
          return decoded;
        }));
    while (in_flight.size() >= max_in_flight) drain_front();
  };

  MrtReader reader(in);
  MrtRecord record;
  std::vector<MrtRecord> batch;
  while (reader.next(record)) {
    ++report.records_ok;
    if (is_peer_index_table(record.type, record.subtype)) {
      // Peer-table switch: flush so no chunk spans two tables, then
      // publish a fresh immutable snapshot for subsequent chunks.
      if (!batch.empty()) {
        submit_chunk(std::move(batch));
        batch = {};
      }
      peers = std::make_shared<const std::vector<bgp::VantagePointId>>(
          decode_peer_index_table(as_view(record)));
      continue;
    }
    batch.push_back(std::move(record));
    record = {};
    if (batch.size() >= kChunkRecords) {
      submit_chunk(std::move(batch));
      batch = {};
    }
  }
  if (!batch.empty()) submit_chunk(std::move(batch));
  while (!in_flight.empty()) drain_front();
  return entries;
}

}  // namespace

std::vector<bgp::RibEntry> read_rib_entries(std::istream& in) {
  return read_rib_entries(in, DecodeOptions{});
}

std::vector<bgp::RibEntry> read_rib_entries(std::istream& in,
                                            const DecodeOptions& options,
                                            DecodeReport* report) {
  std::vector<bgp::RibEntry> entries;
  VectorSink sink(entries);
  decode_rib_stream(in, sink, options, report);
  return entries;
}

std::vector<bgp::RibEntry> read_rib_entries_parallel(std::istream& in,
                                                     util::ThreadPool& pool) {
  return read_rib_entries_parallel(in, pool, DecodeOptions{});
}

std::vector<bgp::RibEntry> read_rib_entries_parallel(std::istream& in,
                                                     util::ThreadPool& pool,
                                                     const DecodeOptions& options,
                                                     DecodeReport* report) {
  DecodeReport local;
  try {
    std::vector<bgp::RibEntry> entries;
    if (options.tolerant()) {
      const std::vector<std::uint8_t> bytes = slurp_stream(in);
      entries = read_rib_entries_parallel_tolerant(bytes, pool, options, local);
    } else {
      entries = read_rib_entries_parallel_strict(in, pool, local);
    }
    if (report) *report = std::move(local);
    return entries;
  } catch (...) {
    if (report) *report = std::move(local);
    throw;
  }
}

std::vector<bgp::RibEntry> read_rib_entries(
    const std::vector<std::uint8_t>& bytes) {
  return read_rib_entries(std::span<const std::uint8_t>(bytes),
                          DecodeOptions{});
}

std::vector<bgp::RibEntry> read_rib_entries(std::span<const std::uint8_t> bytes,
                                            const DecodeOptions& options,
                                            DecodeReport* report) {
  std::vector<bgp::RibEntry> entries;
  VectorSink sink(entries);
  DecodeReport local;
  try {
    decode_image(bytes, sink, options, local);
    if (report) *report = std::move(local);
    return entries;
  } catch (...) {
    if (report) *report = std::move(local);
    throw;
  }
}

void decode_rib_stream(const ByteSource& source, EntrySink& sink,
                       const DecodeOptions& options, DecodeReport* report) {
  DecodeReport local;
  try {
    decode_image(source.data(), sink, options, local);
    if (report) *report = std::move(local);
  } catch (...) {
    if (report) *report = std::move(local);
    throw;
  }
}

void decode_rib_stream(std::istream& in, EntrySink& sink,
                       const DecodeOptions& options, DecodeReport* report) {
  if (options.tolerant()) {
    // Resync needs random access to the whole image; buffer first.
    const BufferSource source(slurp_stream(in));
    decode_rib_stream(source, sink, options, report);
    return;
  }
  DecodeReport local;
  try {
    decode_strict_stream(in, sink, local);
    if (report) *report = std::move(local);
  } catch (...) {
    if (report) *report = std::move(local);
    throw;
  }
}

}  // namespace bgpintent::mrt
