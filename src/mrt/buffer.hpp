// Bounds-checked big-endian byte buffers for wire-format work.
//
// ByteWriter appends network-byte-order primitives to a growable buffer;
// ByteReader consumes them from a span.  All reader operations throw
// MrtError on truncation — wire data is untrusted input.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bgpintent::mrt {

/// Thrown on malformed or truncated wire data.
class MrtError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bytes(std::span<const std::uint8_t> bytes);

  /// Overwrites a previously written big-endian u16 at `offset` (for
  /// back-patching length fields).  Throws MrtError if out of range.
  void patch_u16(std::size_t offset, std::uint16_t v);
  void patch_u32(std::size_t offset, std::uint32_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reader accessors are defined inline: record decoding consumes wire
/// data a few bytes at a time, so a cross-TU call per primitive would
/// dominate the real work.  Only the throw path is out of line.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8() {
    require(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t get_u16() {
    require(2);
    const auto hi = static_cast<std::uint16_t>(data_[pos_]);
    const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
    pos_ += 2;
    return static_cast<std::uint16_t>(hi << 8 | lo);
  }
  [[nodiscard]] std::uint32_t get_u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_++];
    return v;
  }
  [[nodiscard]] std::uint64_t get_u64() {
    const std::uint64_t hi = get_u32();
    return hi << 32 | get_u32();
  }

  /// Consumes `n` bytes and returns a view of them.
  [[nodiscard]] std::span<const std::uint8_t> get_bytes(std::size_t n) {
    require(n);
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  /// Consumes `n` bytes and returns a sub-reader over them.
  [[nodiscard]] ByteReader sub_reader(std::size_t n) {
    return ByteReader(get_bytes(n));
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) [[unlikely]] fail(n);
  }
  [[noreturn]] void fail(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace bgpintent::mrt
