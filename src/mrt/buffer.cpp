#include "mrt/buffer.hpp"

namespace bgpintent::mrt {

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw MrtError("patch_u16 out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size()) throw MrtError("patch_u32 out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 24);
  buf_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
  buf_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 3] = static_cast<std::uint8_t>(v);
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n)
    throw MrtError("truncated record: need " + std::to_string(n) +
                   " bytes, have " + std::to_string(remaining()));
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  require(2);
  const auto hi = static_cast<std::uint16_t>(data_[pos_]);
  const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return static_cast<std::uint16_t>(hi << 8 | lo);
}

std::uint32_t ByteReader::get_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_++];
  return v;
}

std::uint64_t ByteReader::get_u64() {
  const std::uint64_t hi = get_u32();
  return hi << 32 | get_u32();
}

std::span<const std::uint8_t> ByteReader::get_bytes(std::size_t n) {
  require(n);
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

ByteReader ByteReader::sub_reader(std::size_t n) {
  return ByteReader(get_bytes(n));
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

}  // namespace bgpintent::mrt
