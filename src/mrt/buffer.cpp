#include "mrt/buffer.hpp"

namespace bgpintent::mrt {

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw MrtError("patch_u16 out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size()) throw MrtError("patch_u32 out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 24);
  buf_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
  buf_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 3] = static_cast<std::uint8_t>(v);
}

void ByteReader::fail(std::size_t n) const {
  throw MrtError("truncated record: need " + std::to_string(n) +
                 " bytes, have " + std::to_string(remaining()));
}

}  // namespace bgpintent::mrt
