#include "mrt/framing.hpp"

#include "mrt/bgp_message.hpp"

namespace bgpintent::mrt {

namespace {

constexpr std::uint8_t kPeerTypeAs4 = 0x02;  // RFC 6396 §4.3.1

[[nodiscard]] std::uint16_t peek_u16(std::span<const std::uint8_t> data,
                                     std::size_t pos) noexcept {
  return static_cast<std::uint16_t>((data[pos] << 8) | data[pos + 1]);
}

[[nodiscard]] std::uint32_t peek_u32(std::span<const std::uint8_t> data,
                                     std::size_t pos) noexcept {
  return (static_cast<std::uint32_t>(data[pos]) << 24) |
         (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
         (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
         static_cast<std::uint32_t>(data[pos + 3]);
}

/// Reassigns every field of the scratch row from one attribute block.
/// The scratch may have been moved from by the previous on_entry call, so
/// nothing may survive implicitly — every Route field is written here.
/// The attribute block is copied, not moved: a sink that leaves the row
/// alone (the streaming ingest) keeps both the row's and the block's heap
/// buffers warm, so the copy reuses capacity instead of allocating.
void fill_route(bgp::Route& route, const bgp::Prefix& prefix,
                const PathAttributes& attrs) {
  route.prefix = prefix;
  route.path = attrs.as_path;
  route.communities = attrs.communities;
  route.large_communities = attrs.large_communities;
  route.ext_communities = attrs.ext_communities;
  route.next_hop = attrs.next_hop;
  route.origin_attr = attrs.origin;
  route.med = attrs.med;
  route.local_pref = attrs.local_pref;
}

}  // namespace

std::vector<bgp::VantagePointId> decode_peer_index_table(
    const RecordView& record) {
  std::vector<bgp::VantagePointId> peer_table;
  ByteReader body(record.body);
  body.skip(4);  // collector id
  const std::uint16_t name_len = body.get_u16();
  body.skip(name_len);
  const std::uint16_t count = body.get_u16();
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint8_t peer_type = body.get_u8();
    if ((peer_type & 0x01) != 0)
      throw MrtError("IPv6 peers not supported");
    body.skip(4);  // BGP id
    bgp::VantagePointId peer;
    peer.address = body.get_u32();
    peer.asn = (peer_type & kPeerTypeAs4) != 0
                   ? body.get_u32()
                   : body.get_u16();
    peer_table.push_back(peer);
  }
  return peer_table;
}

void decode_data_record(const RecordView& record,
                        const std::vector<bgp::VantagePointId>& peer_table,
                        EntrySink& sink, RowScratch& scratch) {
  if (record.type == kTypeTableDumpV2 &&
      record.subtype == kSubtypeRibIpv4Unicast) {
    ByteReader body(record.body);
    body.skip(4);  // sequence
    const bgp::Prefix prefix = decode_nlri_prefix(body);
    const std::uint16_t count = body.get_u16();
    for (std::uint16_t i = 0; i < count; ++i) {
      const std::uint16_t peer_idx = body.get_u16();
      body.skip(4);  // originated time
      const std::uint16_t attr_len = body.get_u16();
      decode_path_attributes(body, attr_len, /*asn16=*/false, scratch.attrs);
      if (peer_idx >= peer_table.size())
        throw MrtError("peer index out of range");
      scratch.row.vantage_point = peer_table[peer_idx];
      fill_route(scratch.row.route, prefix, scratch.attrs);
      sink.on_entry(scratch.row);
    }
  } else if (record.type == kTypeTableDump &&
             record.subtype == kSubtypeTableDumpIpv4) {
    ByteReader body(record.body);
    body.skip(2);  // view
    body.skip(2);  // sequence
    const std::uint32_t address = body.get_u32();
    const std::uint8_t length = body.get_u8();
    if (length > 32) throw MrtError("bad legacy prefix length");
    body.skip(1);  // status
    body.skip(4);  // originated time
    scratch.row.vantage_point.address = body.get_u32();
    scratch.row.vantage_point.asn = body.get_u16();
    const std::uint16_t attr_len = body.get_u16();
    decode_path_attributes(body, attr_len, /*asn16=*/true, scratch.attrs);
    fill_route(scratch.row.route, bgp::Prefix(address, length), scratch.attrs);
    sink.on_entry(scratch.row);
  } else if (record.type == kTypeBgp4mp &&
             (record.subtype == kSubtypeBgp4mpStateChange ||
              record.subtype == kSubtypeBgp4mpStateChangeAs4)) {
    // Session state transitions carry no routes; skipped by design.
  } else if (record.type == kTypeBgp4mp &&
             record.subtype == kSubtypeBgp4mpMessageAs4) {
    ByteReader body(record.body);
    bgp::VantagePointId peer;
    peer.asn = body.get_u32();
    body.skip(4);  // local AS
    body.skip(2);  // interface
    const std::uint16_t afi = body.get_u16();
    if (afi != 1) return;  // IPv4 only
    peer.address = body.get_u32();
    body.skip(4);  // local IP
    const BgpUpdate update = decode_bgp_message(body);
    for (const bgp::Prefix& prefix : update.announced) {
      // The attribute block is shared by every announced prefix; each row
      // copies it (exactly what the materializing reader paid).
      scratch.row.vantage_point = peer;
      fill_route(scratch.row.route, prefix, update.attrs);
      sink.on_entry(scratch.row);
    }
  }
  // Other record types: skipped.
}

bool plausible_record_header(std::uint16_t type, std::uint16_t subtype,
                             std::uint32_t length) noexcept {
  constexpr std::uint16_t kTypeBgp4mpEt = 17;
  if (length > kMaxRecordSize) return false;
  switch (type) {
    case kTypeTableDump:
      return subtype >= 1 && subtype <= 2;  // IPv4 / IPv6 rows
    case kTypeTableDumpV2:
      return subtype >= 1 && subtype <= 6;  // peer table .. RIB_GENERIC
    case kTypeBgp4mp:
    case kTypeBgp4mpEt:
      return subtype <= 11;
    default:
      return false;
  }
}

bool StrictFramer::next(RecordView& out) {
  if (pos_ == data_.size()) return false;
  if (data_.size() - pos_ < 12) throw MrtError("truncated MRT header");
  out.timestamp = peek_u32(data_, pos_);
  out.type = peek_u16(data_, pos_ + 4);
  out.subtype = peek_u16(data_, pos_ + 6);
  const std::uint32_t length = peek_u32(data_, pos_ + 8);
  if (length > kMaxRecordSize) throw MrtError("oversized MRT record");
  if (data_.size() - pos_ - 12 < length)
    throw MrtError("truncated MRT record body");
  out.body = data_.subspan(pos_ + 12, length);
  pos_ += 12 + length;
  return true;
}

bool TolerantFramer::next(Framed& out) {
  for (;;) {
    if (pos_ >= data_.size()) return false;
    const std::size_t remaining = data_.size() - pos_;
    if (remaining < 12) {
      report_->add_error({pos_, index_++, 0, "truncated MRT header"});
      report_->bytes_skipped += remaining;
      pos_ = data_.size();
      check_budget();
      return false;
    }
    const std::uint16_t type = peek_u16(data_, pos_ + 4);
    const std::uint16_t subtype = peek_u16(data_, pos_ + 6);
    const std::uint32_t length = peek_u32(data_, pos_ + 8);
    if (!plausible_record_header(type, subtype, length) ||
        pos_ + 12 + length > data_.size()) {
      fail_and_resync(type, subtype, length);
      check_budget();
      continue;
    }
    const std::size_t end = pos_ + 12 + length;
    if (!chains_at(end)) {
      // The claimed end does not land on a record boundary.  Either this
      // record's length field lies (a splice tore bytes out, or the
      // length was rewritten) or the *next* record's header is damaged.
      // A plausible boundary strictly inside the claimed body settles
      // it: the length lied — reject this record and resync there, which
      // is what rescues the shifted-but-intact records after a splice.
      // Otherwise trust this record; the next call handles the damage.
      const std::size_t rescue = scan_for_header(pos_ + 1);
      if (rescue < end) {
        report_->add_error({pos_, index_++, length,
                            "MRT record length overruns next record"});
        report_->bytes_skipped += rescue - pos_;
        report_->add_resync(rescue - pos_);
        pos_ = rescue;
        check_budget();
        continue;
      }
    }
    out.record.timestamp = peek_u32(data_, pos_);
    out.record.type = type;
    out.record.subtype = subtype;
    out.record.body = data_.subspan(pos_ + 12, length);
    out.offset = pos_;
    out.index = index_++;
    pos_ += 12 + length;
    return true;
  }
}

bool TolerantFramer::chains_at(std::size_t end) const noexcept {
  if (end == data_.size()) return true;
  return end + 12 <= data_.size() &&
         plausible_record_header(peek_u16(data_, end + 4),
                                 peek_u16(data_, end + 6),
                                 peek_u32(data_, end + 8));
}

void TolerantFramer::check_budget() const {
  if (report_->over_budget(*options_)) {
    report_->budget_exhausted = true;
    throw DecodeBudgetError(
        "MRT decode error budget exceeded (" + report_->summary() + ")",
        *report_);
  }
}

void TolerantFramer::fail_and_resync(std::uint16_t type, std::uint16_t subtype,
                                     std::uint32_t length) {
  const char* reason;
  if (length > kMaxRecordSize) {
    reason = "oversized MRT record";
  } else if (!plausible_record_header(type, subtype, length)) {
    reason = "implausible MRT record header";
  } else {
    reason = "truncated MRT record body";
  }
  report_->add_error({pos_, index_++, length, reason});
  const std::size_t next = scan_for_header(pos_ + 1);
  report_->bytes_skipped += next - pos_;
  report_->add_resync(next - pos_);
  pos_ = next;
}

std::size_t TolerantFramer::scan_for_header(std::size_t from) const noexcept {
  for (std::size_t pos = from; pos + 12 <= data_.size(); ++pos) {
    const std::uint32_t length = peek_u32(data_, pos + 8);
    if (!plausible_record_header(peek_u16(data_, pos + 4),
                                 peek_u16(data_, pos + 6), length))
      continue;
    const std::size_t end = pos + 12 + length;
    if (end > data_.size()) continue;
    if (end == data_.size()) return pos;
    if (end + 12 <= data_.size() &&
        plausible_record_header(peek_u16(data_, end + 4),
                                peek_u16(data_, end + 6),
                                peek_u32(data_, end + 8)))
      return pos;
  }
  return data_.size();
}

void record_body_failure(DecodeReport& report,
                         const TolerantFramer::Framed& framed,
                         const char* what) {
  report.add_error({framed.offset, framed.index,
                    static_cast<std::uint32_t>(framed.record.body.size()),
                    what});
  report.bytes_skipped += 12 + framed.record.body.size();
}

void throw_budget(DecodeReport& report) {
  report.budget_exhausted = true;
  throw DecodeBudgetError(
      "MRT decode error budget exceeded (" + report.summary() + ")", report);
}

void check_final_budget(DecodeReport& report, const DecodeOptions& options) {
  if (report.over_final_budget(options)) throw_budget(report);
}

}  // namespace bgpintent::mrt
