#include "mrt/bgp_message.hpp"

namespace bgpintent::mrt {

namespace {

constexpr std::uint8_t kBgpMessageUpdate = 2;
constexpr std::uint8_t kBgpMessageKeepalive = 4;
constexpr std::size_t kBgpHeaderSize = 19;  // marker(16) + length(2) + type(1)

/// Writes one attribute with automatic extended-length selection.
void put_attribute(ByteWriter& out, std::uint8_t flags, std::uint8_t type,
                   const std::vector<std::uint8_t>& body) {
  const bool extended = body.size() > 0xff;
  out.put_u8(static_cast<std::uint8_t>(
      flags | (extended ? kFlagExtendedLength : 0)));
  out.put_u8(type);
  if (extended)
    out.put_u16(static_cast<std::uint16_t>(body.size()));
  else
    out.put_u8(static_cast<std::uint8_t>(body.size()));
  out.put_bytes(body);
}

}  // namespace

void encode_nlri_prefix(ByteWriter& out, const bgp::Prefix& prefix) {
  out.put_u8(prefix.length());
  const std::uint32_t addr = prefix.address();
  const int bytes = (prefix.length() + 7) / 8;
  for (int i = 0; i < bytes; ++i)
    out.put_u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
}

bgp::Prefix decode_nlri_prefix(ByteReader& in) {
  const std::uint8_t len = in.get_u8();
  if (len > 32) throw MrtError("NLRI prefix length > 32");
  const int bytes = (len + 7) / 8;
  std::uint32_t addr = 0;
  for (int i = 0; i < bytes; ++i)
    addr |= static_cast<std::uint32_t>(in.get_u8()) << (24 - 8 * i);
  return bgp::Prefix(addr, len);
}

void encode_path_attributes(ByteWriter& out, const PathAttributes& attrs) {
  {
    std::vector<std::uint8_t> body{
        static_cast<std::uint8_t>(attrs.origin)};
    put_attribute(out, kFlagTransitive, kAttrOrigin, body);
  }
  {
    ByteWriter body;
    for (const auto& seg : attrs.as_path.segments()) {
      if (seg.asns.size() > 255)
        throw MrtError("AS_PATH segment longer than 255");
      body.put_u8(static_cast<std::uint8_t>(seg.type));
      body.put_u8(static_cast<std::uint8_t>(seg.asns.size()));
      for (const bgp::Asn asn : seg.asns) body.put_u32(asn);
    }
    put_attribute(out, kFlagTransitive, kAttrAsPath, body.bytes());
  }
  {
    ByteWriter body;
    body.put_u32(attrs.next_hop);
    put_attribute(out, kFlagTransitive, kAttrNextHop, body.bytes());
  }
  if (attrs.med) {
    ByteWriter body;
    body.put_u32(*attrs.med);
    put_attribute(out, kFlagOptional, kAttrMed, body.bytes());
  }
  if (attrs.local_pref) {
    ByteWriter body;
    body.put_u32(*attrs.local_pref);
    put_attribute(out, kFlagTransitive, kAttrLocalPref, body.bytes());
  }
  if (!attrs.communities.empty()) {
    ByteWriter body;
    for (const bgp::Community c : attrs.communities) body.put_u32(c.wire());
    put_attribute(out, kFlagOptional | kFlagTransitive, kAttrCommunities,
                  body.bytes());
  }
  if (!attrs.ext_communities.empty()) {
    ByteWriter body;
    for (const bgp::ExtCommunity c : attrs.ext_communities)
      body.put_u64(c.wire());
    put_attribute(out, kFlagOptional | kFlagTransitive, kAttrExtCommunities,
                  body.bytes());
  }
  if (!attrs.large_communities.empty()) {
    ByteWriter body;
    for (const bgp::LargeCommunity& c : attrs.large_communities) {
      body.put_u32(c.alpha());
      body.put_u32(c.beta());
      body.put_u32(c.gamma());
    }
    put_attribute(out, kFlagOptional | kFlagTransitive, kAttrLargeCommunities,
                  body.bytes());
  }
}

PathAttributes decode_path_attributes(ByteReader& in, std::size_t length,
                                      bool asn16) {
  PathAttributes attrs;
  decode_path_attributes(in, length, asn16, attrs);
  return attrs;
}

void decode_path_attributes(ByteReader& in, std::size_t length, bool asn16,
                            PathAttributes& attrs) {
  attrs.origin = bgp::Origin::kIgp;
  attrs.next_hop = 0;
  attrs.med.reset();
  attrs.local_pref.reset();
  attrs.communities.clear();
  attrs.ext_communities.clear();
  attrs.large_communities.clear();
  // Path segments are recycled slot by slot so their ASN buffers survive
  // across records; `seg_used` is resized away at the end, which also
  // clears the path when no AS_PATH attribute is present.
  std::size_t seg_used = 0;
  ByteReader block = in.sub_reader(length);
  while (!block.exhausted()) {
    const std::uint8_t flags = block.get_u8();
    const std::uint8_t type = block.get_u8();
    const std::size_t body_len = (flags & kFlagExtendedLength) != 0
                                     ? block.get_u16()
                                     : block.get_u8();
    ByteReader body = block.sub_reader(body_len);
    switch (type) {
      case kAttrOrigin: {
        const std::uint8_t value = body.get_u8();
        if (value > 2) throw MrtError("bad ORIGIN value");
        attrs.origin = static_cast<bgp::Origin>(value);
        break;
      }
      case kAttrAsPath: {
        std::vector<bgp::PathSegment>& segments =
            attrs.as_path.mutable_segments();
        seg_used = 0;  // a repeated AS_PATH attribute replaces the first
        while (!body.exhausted()) {
          const std::uint8_t seg_type = body.get_u8();
          if (seg_type != 1 && seg_type != 2)
            throw MrtError("bad AS_PATH segment type");
          const std::uint8_t count = body.get_u8();
          if (count == 0) continue;  // AsPath drops empty segments
          if (seg_used == segments.size()) segments.emplace_back();
          bgp::PathSegment& segment = segments[seg_used++];
          segment.type = static_cast<bgp::SegmentType>(seg_type);
          segment.asns.clear();
          segment.asns.reserve(count);
          for (std::uint8_t i = 0; i < count; ++i)
            segment.asns.push_back(asn16 ? body.get_u16() : body.get_u32());
        }
        break;
      }
      case kAttrNextHop:
        attrs.next_hop = body.get_u32();
        break;
      case kAttrMed:
        attrs.med = body.get_u32();
        break;
      case kAttrLocalPref:
        attrs.local_pref = body.get_u32();
        break;
      case kAttrCommunities:
        if (body_len % 4 != 0) throw MrtError("bad COMMUNITIES length");
        while (!body.exhausted())
          attrs.communities.push_back(bgp::Community::from_wire(body.get_u32()));
        break;
      case kAttrExtCommunities:
        if (body_len % 8 != 0)
          throw MrtError("bad EXTENDED_COMMUNITIES length");
        while (!body.exhausted())
          attrs.ext_communities.push_back(
              bgp::ExtCommunity::from_wire(body.get_u64()));
        break;
      case kAttrLargeCommunities: {
        if (body_len % 12 != 0)
          throw MrtError("bad LARGE_COMMUNITIES length");
        while (!body.exhausted()) {
          const std::uint32_t alpha = body.get_u32();
          const std::uint32_t beta = body.get_u32();
          const std::uint32_t gamma = body.get_u32();
          attrs.large_communities.emplace_back(alpha, beta, gamma);
        }
        break;
      }
      default:
        // Unknown attribute: acceptable only if optional (RFC 4271 §5).
        if ((flags & kFlagOptional) == 0)
          throw MrtError("unknown well-known attribute " +
                         std::to_string(type));
        break;  // body already consumed via sub_reader
    }
  }
  attrs.as_path.mutable_segments().resize(seg_used);
}

void encode_bgp_update(ByteWriter& out, const BgpUpdate& update) {
  const std::size_t start = out.size();
  for (int i = 0; i < 16; ++i) out.put_u8(0xff);  // marker
  out.put_u16(0);                                 // length, patched below
  out.put_u8(kBgpMessageUpdate);

  ByteWriter withdrawn;
  for (const bgp::Prefix& prefix : update.withdrawn)
    encode_nlri_prefix(withdrawn, prefix);
  out.put_u16(static_cast<std::uint16_t>(withdrawn.size()));
  out.put_bytes(withdrawn.bytes());

  ByteWriter attrs;
  if (update.has_announcements())
    encode_path_attributes(attrs, update.attrs);
  out.put_u16(static_cast<std::uint16_t>(attrs.size()));
  out.put_bytes(attrs.bytes());

  for (const bgp::Prefix& prefix : update.announced)
    encode_nlri_prefix(out, prefix);

  const std::size_t total = out.size() - start;
  if (total > 4096) throw MrtError("BGP message exceeds 4096 bytes");
  out.patch_u16(start + 16, static_cast<std::uint16_t>(total));
}

BgpUpdate decode_bgp_message(ByteReader& in, bool asn16) {
  for (int i = 0; i < 16; ++i)
    if (in.get_u8() != 0xff) throw MrtError("bad BGP marker");
  const std::uint16_t total = in.get_u16();
  if (total < kBgpHeaderSize) throw MrtError("bad BGP message length");
  const std::uint8_t type = in.get_u8();
  ByteReader body = in.sub_reader(total - kBgpHeaderSize);

  BgpUpdate update;
  if (type == kBgpMessageKeepalive) return update;
  if (type != kBgpMessageUpdate)
    throw MrtError("unexpected BGP message type " + std::to_string(type));

  const std::uint16_t withdrawn_len = body.get_u16();
  ByteReader withdrawn = body.sub_reader(withdrawn_len);
  while (!withdrawn.exhausted())
    update.withdrawn.push_back(decode_nlri_prefix(withdrawn));

  const std::uint16_t attr_len = body.get_u16();
  update.attrs = decode_path_attributes(body, attr_len, asn16);

  while (!body.exhausted())
    update.announced.push_back(decode_nlri_prefix(body));
  return update;
}

}  // namespace bgpintent::mrt
