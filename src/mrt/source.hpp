// Byte sources for MRT decoding: one contiguous read-only view of a whole
// stream plus whatever ownership keeps that view alive.
//
// The streaming ingest path (docs/PERFORMANCE.md) parses record bodies as
// zero-copy spans out of the source image instead of per-record vector
// copies, so the only question left is where the image lives:
//
//   MmapSource    maps a regular file; the kernel pages bytes in on
//                 demand and the decode never copies them.
//   BufferSource  owns a heap copy — the fallback for pipes, stdin, and
//                 istreams, and for filesystems where mmap fails.
//
// open_source() picks between them for a path; slurp_stream() buffers an
// istream for BufferSource.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace bgpintent::mrt {

/// A whole MRT stream as one contiguous byte view.  The view stays valid
/// for the lifetime of the source object; decoders may hand out spans into
/// it (record bodies, tolerant-framer views) that must not outlive it.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  [[nodiscard]] virtual std::span<const std::uint8_t> data() const noexcept = 0;

  /// True when data() views file pages directly (mmap) rather than an
  /// owned heap copy.
  [[nodiscard]] virtual bool zero_copy() const noexcept { return false; }

  [[nodiscard]] std::size_t size() const noexcept { return data().size(); }
};

/// Owns its bytes; the fallback for pipes, stdin, and in-memory images.
class BufferSource final : public ByteSource {
 public:
  explicit BufferSource(std::vector<std::uint8_t> bytes) noexcept
      : bytes_(std::move(bytes)) {}

  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept override {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Maps a regular file read-only.  Throws MrtError when the file cannot be
/// opened or mapped (callers that want graceful degradation use
/// open_source below).  An empty file maps to an empty span.
class MmapSource final : public ByteSource {
 public:
  explicit MmapSource(const std::string& path);
  ~MmapSource() override;

  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept override {
    return {static_cast<const std::uint8_t*>(map_), size_};
  }
  [[nodiscard]] bool zero_copy() const noexcept override { return true; }

 private:
  void* map_ = nullptr;
  std::size_t size_ = 0;
};

/// Opens `path` for decoding: a zero-copy MmapSource when the path is a
/// mappable regular file and `allow_mmap` holds, otherwise a BufferSource
/// holding the file contents.  Throws MrtError when the file cannot be
/// read at all.  Check zero_copy() on the result to learn which one the
/// caller got (the CLI prints a fallback note).
[[nodiscard]] std::unique_ptr<ByteSource> open_source(const std::string& path,
                                                      bool allow_mmap = true);

/// Reads the remainder of `in` into a byte vector (BufferSource fuel).
/// Throws MrtError when the stream errors out mid-read.
[[nodiscard]] std::vector<std::uint8_t> slurp_stream(std::istream& in);

}  // namespace bgpintent::mrt
