// Deterministic MRT fault injection: the corruptor behind the
// fault-injection test harness and the `bgpintent mrt-corrupt` command.
//
// Given a *valid* MRT image, corrupt_mrt applies one seeded corruption —
// a body bit-flip, a mid-record truncation, a splice that tears bytes out
// of the middle, or a lie in a header length field — and reports exactly
// which record indices were damaged.  Tests use the touched set to assert
// the tolerant decoder recovers every record it does not name
// (docs/ROBUSTNESS.md describes the recovery guarantees).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bgpintent::mrt {

enum class CorruptionKind : std::uint8_t {
  kBitFlip,    ///< flip one bit inside a record body
  kTruncate,   ///< cut the image mid-record
  kSplice,     ///< remove a byte range, tearing one or more records
  kLengthLie,  ///< corrupt a header length field (shrink or grow)
};

/// All kinds, for tests that sweep the space.
inline constexpr CorruptionKind kAllCorruptionKinds[] = {
    CorruptionKind::kBitFlip, CorruptionKind::kTruncate,
    CorruptionKind::kSplice, CorruptionKind::kLengthLie};

[[nodiscard]] std::string_view to_string(CorruptionKind kind) noexcept;

/// Parses "bitflip" / "truncate" / "splice" / "lengthlie".
[[nodiscard]] std::optional<CorruptionKind> parse_corruption_kind(
    std::string_view name) noexcept;

/// Byte range of one record (header + body) in a valid MRT image.
struct RecordSpan {
  std::uint64_t offset = 0;  ///< start of the 12-byte header
  std::uint64_t length = 0;  ///< header + body bytes
};

/// Frames a *valid* MRT image into record spans.  Throws MrtError if the
/// image is truncated or a record is oversized — this is the strict framer,
/// meant for fixtures, not for untrusted input.
[[nodiscard]] std::vector<RecordSpan> index_records(
    std::span<const std::uint8_t> bytes);

struct CorruptionResult {
  std::vector<std::uint8_t> bytes;  ///< the corrupted image
  /// Indices of records whose decode can no longer be trusted.  Every
  /// record *not* listed here is byte-identical in `bytes` and must be
  /// recovered by a tolerant decode.  For kTruncate the set is the cut
  /// record plus everything after it.
  std::vector<std::uint64_t> touched_records;
  std::string description;  ///< human-readable, e.g. for test failures
};

/// How a framed byte stream lays out its per-record headers — the only
/// facts the generic corruptor needs to aim a length lie or pick a body
/// byte.  MRT records are {12, 8, big-endian}; stream journal frames are
/// {8, 0, little-endian} (stream/journal.hpp).
struct FrameLayout {
  std::uint32_t header_bytes = 12;   ///< bytes before the body
  std::uint32_t length_offset = 8;   ///< of the u32 body/payload length
  bool length_big_endian = true;
};

/// The MRT record layout index_records() frames.
inline constexpr FrameLayout kMrtFrameLayout{12, 8, true};

/// Applies one seeded corruption of `kind` to a framed image whose record
/// spans are `spans` (any framing: MRT records, journal frames).  Records
/// below `first_victim` are never chosen as the victim (they may still be
/// touched by a splice overrun).  Deterministic: same inputs give the
/// same result, and the RNG draw sequence is part of the contract — seeds
/// reproduce across releases.  Throws MrtError when no record is
/// eligible.
[[nodiscard]] CorruptionResult corrupt_spans(std::span<const std::uint8_t> bytes,
                                             std::span<const RecordSpan> spans,
                                             const FrameLayout& layout,
                                             CorruptionKind kind,
                                             std::uint64_t seed,
                                             std::uint64_t first_victim = 0);

/// Applies one seeded corruption of `kind` to a valid MRT image.  When
/// record 0 is a PEER_INDEX_TABLE (RIB fixtures) it is never chosen as
/// the victim, so surviving data records stay joinable to their peer
/// table; BGP4MP update streams have no peer table and every record is a
/// candidate.  Deterministic: same bytes, kind, and seed give the same
/// result.  Throws MrtError when the image is empty, or when a RIB image
/// has no data record beyond the peer table.
[[nodiscard]] CorruptionResult corrupt_mrt(std::span<const std::uint8_t> bytes,
                                           CorruptionKind kind,
                                           std::uint64_t seed);

}  // namespace bgpintent::mrt
