// Deterministic MRT fault injection: the corruptor behind the
// fault-injection test harness and the `bgpintent mrt-corrupt` command.
//
// Given a *valid* MRT image, corrupt_mrt applies one seeded corruption —
// a body bit-flip, a mid-record truncation, a splice that tears bytes out
// of the middle, or a lie in a header length field — and reports exactly
// which record indices were damaged.  Tests use the touched set to assert
// the tolerant decoder recovers every record it does not name
// (docs/ROBUSTNESS.md describes the recovery guarantees).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bgpintent::mrt {

enum class CorruptionKind : std::uint8_t {
  kBitFlip,    ///< flip one bit inside a record body
  kTruncate,   ///< cut the image mid-record
  kSplice,     ///< remove a byte range, tearing one or more records
  kLengthLie,  ///< corrupt a header length field (shrink or grow)
};

/// All kinds, for tests that sweep the space.
inline constexpr CorruptionKind kAllCorruptionKinds[] = {
    CorruptionKind::kBitFlip, CorruptionKind::kTruncate,
    CorruptionKind::kSplice, CorruptionKind::kLengthLie};

[[nodiscard]] std::string_view to_string(CorruptionKind kind) noexcept;

/// Parses "bitflip" / "truncate" / "splice" / "lengthlie".
[[nodiscard]] std::optional<CorruptionKind> parse_corruption_kind(
    std::string_view name) noexcept;

/// Byte range of one record (header + body) in a valid MRT image.
struct RecordSpan {
  std::uint64_t offset = 0;  ///< start of the 12-byte header
  std::uint64_t length = 0;  ///< header + body bytes
};

/// Frames a *valid* MRT image into record spans.  Throws MrtError if the
/// image is truncated or a record is oversized — this is the strict framer,
/// meant for fixtures, not for untrusted input.
[[nodiscard]] std::vector<RecordSpan> index_records(
    std::span<const std::uint8_t> bytes);

struct CorruptionResult {
  std::vector<std::uint8_t> bytes;  ///< the corrupted image
  /// Indices of records whose decode can no longer be trusted.  Every
  /// record *not* listed here is byte-identical in `bytes` and must be
  /// recovered by a tolerant decode.  For kTruncate the set is the cut
  /// record plus everything after it.
  std::vector<std::uint64_t> touched_records;
  std::string description;  ///< human-readable, e.g. for test failures
};

/// Applies one seeded corruption of `kind` to a valid MRT image.  When
/// record 0 is a PEER_INDEX_TABLE (RIB fixtures) it is never chosen as
/// the victim, so surviving data records stay joinable to their peer
/// table; BGP4MP update streams have no peer table and every record is a
/// candidate.  Deterministic: same bytes, kind, and seed give the same
/// result.  Throws MrtError when the image is empty, or when a RIB image
/// has no data record beyond the peer table.
[[nodiscard]] CorruptionResult corrupt_mrt(std::span<const std::uint8_t> bytes,
                                           CorruptionKind kind,
                                           std::uint64_t seed);

}  // namespace bgpintent::mrt
