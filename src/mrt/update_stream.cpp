#include "mrt/update_stream.hpp"

#include <istream>

#include "mrt/mrt_file.hpp"

namespace bgpintent::mrt {

namespace {

/// Adapter that forwards RIB-shaped rows (TABLE_DUMP, TABLE_DUMP_V2) to an
/// UpdateSink as announcements stamped with the enclosing record's
/// timestamp.  Lives on the stack of each decode loop; the timestamp is
/// set per record before delegation.
class RowAdapter final : public EntrySink {
 public:
  explicit RowAdapter(UpdateSink& sink) noexcept : sink_(&sink) {}

  void set_timestamp(std::uint32_t timestamp) noexcept {
    timestamp_ = timestamp;
  }
  void on_entry(bgp::RibEntry& entry) override {
    sink_->on_announce(entry, timestamp_);
  }

 private:
  UpdateSink* sink_;
  std::uint32_t timestamp_ = 0;
};

/// Scratch for one update decode loop: the RIB row + attribute block plus
/// the decoded-update buffers (prefix lists recycle their capacity) and
/// the row adapter for non-BGP4MP records.
struct UpdateScratch {
  explicit UpdateScratch(UpdateSink& sink) noexcept : rows(sink) {}

  RowScratch row_scratch;
  BgpUpdate update;
  RowAdapter rows;
};

void decode_update_record_impl(const RecordView& record,
                               const std::vector<bgp::VantagePointId>& peers,
                               UpdateSink& sink, UpdateScratch& scratch) {
  if (record.type == kTypeBgp4mp &&
      record.subtype == kSubtypeBgp4mpMessageAs4) {
    ByteReader body(record.body);
    bgp::VantagePointId peer;
    peer.asn = body.get_u32();
    body.skip(4);  // local AS
    body.skip(2);  // interface
    const std::uint16_t afi = body.get_u16();
    if (afi != 1) return;  // IPv4 only
    peer.address = body.get_u32();
    body.skip(4);  // local IP
    scratch.update = decode_bgp_message(body);
    for (const bgp::Prefix& prefix : scratch.update.withdrawn)
      sink.on_withdraw(peer, prefix, record.timestamp);
    for (const bgp::Prefix& prefix : scratch.update.announced) {
      scratch.row_scratch.row.vantage_point = peer;
      scratch.row_scratch.row.route.prefix = prefix;
      scratch.row_scratch.row.route.path = scratch.update.attrs.as_path;
      scratch.row_scratch.row.route.communities =
          scratch.update.attrs.communities;
      scratch.row_scratch.row.route.large_communities =
          scratch.update.attrs.large_communities;
      scratch.row_scratch.row.route.ext_communities =
          scratch.update.attrs.ext_communities;
      scratch.row_scratch.row.route.next_hop = scratch.update.attrs.next_hop;
      scratch.row_scratch.row.route.origin_attr = scratch.update.attrs.origin;
      scratch.row_scratch.row.route.med = scratch.update.attrs.med;
      scratch.row_scratch.row.route.local_pref =
          scratch.update.attrs.local_pref;
      sink.on_announce(scratch.row_scratch.row, record.timestamp);
    }
  } else {
    // RIB rows surface as announcements; state changes and unknown types
    // are skipped inside decode_data_record.
    scratch.rows.set_timestamp(record.timestamp);
    decode_data_record(record, peers, scratch.rows, scratch.row_scratch);
  }
}

void decode_strict_update_stream(std::istream& in, UpdateSink& sink,
                                 DecodeReport& report) {
  std::vector<bgp::VantagePointId> peer_table;
  MrtReader reader(in);
  RecordView record;
  UpdateScratch scratch(sink);
  while (reader.next_view(record)) {
    if (is_peer_index_table(record))
      peer_table = decode_peer_index_table(record);
    else
      decode_update_record_impl(record, peer_table, sink, scratch);
    ++report.records_ok;
  }
}

void decode_strict_update_image(std::span<const std::uint8_t> data,
                                UpdateSink& sink, DecodeReport& report) {
  std::vector<bgp::VantagePointId> peer_table;
  StrictFramer framer(data);
  RecordView record;
  UpdateScratch scratch(sink);
  while (framer.next(record)) {
    if (is_peer_index_table(record))
      peer_table = decode_peer_index_table(record);
    else
      decode_update_record_impl(record, peer_table, sink, scratch);
    ++report.records_ok;
  }
}

void decode_tolerant_update_image(std::span<const std::uint8_t> data,
                                  UpdateSink& sink,
                                  const DecodeOptions& options,
                                  DecodeReport& report) {
  std::vector<bgp::VantagePointId> peer_table;
  TolerantFramer framer(data, options, report);
  TolerantFramer::Framed framed;
  UpdateScratch scratch(sink);
  while (framer.next(framed)) {
    try {
      if (is_peer_index_table(framed.record))
        peer_table = decode_peer_index_table(framed.record);
      else
        decode_update_record_impl(framed.record, peer_table, sink, scratch);
      ++report.records_ok;
    } catch (const MrtError& error) {
      record_body_failure(report, framed, error.what());
      if (report.over_budget(options)) throw_budget(report);
    }
  }
  check_final_budget(report, options);
}

void decode_update_image(std::span<const std::uint8_t> data, UpdateSink& sink,
                         const DecodeOptions& options, DecodeReport& report) {
  if (options.tolerant())
    decode_tolerant_update_image(data, sink, options, report);
  else
    decode_strict_update_image(data, sink, report);
}

}  // namespace

void decode_update_record(const RecordView& record,
                          const std::vector<bgp::VantagePointId>& peer_table,
                          UpdateSink& sink, RowScratch& scratch) {
  UpdateScratch local(sink);
  // Borrow the caller's row scratch so tight per-record callers keep their
  // warm buffers; the update buffers are per-call here.
  std::swap(local.row_scratch, scratch);
  try {
    decode_update_record_impl(record, peer_table, sink, local);
  } catch (...) {
    std::swap(local.row_scratch, scratch);
    throw;
  }
  std::swap(local.row_scratch, scratch);
}

void decode_update_stream(const ByteSource& source, UpdateSink& sink,
                          const DecodeOptions& options, DecodeReport* report) {
  DecodeReport local;
  try {
    decode_update_image(source.data(), sink, options, local);
    if (report) *report = std::move(local);
  } catch (...) {
    if (report) *report = std::move(local);
    throw;
  }
}

void decode_update_stream(std::istream& in, UpdateSink& sink,
                          const DecodeOptions& options, DecodeReport* report) {
  if (options.tolerant()) {
    // Resync needs random access to the whole image; buffer first.
    const BufferSource source(slurp_stream(in));
    decode_update_stream(source, sink, options, report);
    return;
  }
  DecodeReport local;
  try {
    decode_strict_update_stream(in, sink, local);
    if (report) *report = std::move(local);
  } catch (...) {
    if (report) *report = std::move(local);
    throw;
  }
}

}  // namespace bgpintent::mrt
