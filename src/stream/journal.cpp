#include "stream/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "stream/wire.hpp"
#include "util/strings.hpp"

namespace bgpintent::stream {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentMagic[8] = {'B', 'G', 'P', 'I', 'J', 'S', 'E', 'G'};
constexpr char kSegmentPrefix[] = "journal-";
constexpr char kSegmentSuffix[] = ".seg";
/// Frames larger than this are treated as corruption, not allocations.
constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;
/// Footer payload: type byte + record count u64 + payload FNV-1a-64.
constexpr std::size_t kFooterPayloadBytes = 17;

[[nodiscard]] std::array<std::uint32_t, 256> make_crc32_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t crc = n;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    table[n] = crc;
  }
  return table;
}

[[nodiscard]] std::string errno_detail() {
  return std::strerror(errno) != nullptr ? std::strerror(errno) : "unknown";
}

/// Reads a whole file; throws JournalError on IO failure.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JournalError(util::format("cannot open %s", path.c_str()));
  std::vector<std::uint8_t> bytes;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0)
    bytes.insert(bytes.end(), buffer, buffer + in.gcount());
  if (in.bad()) throw JournalError(util::format("failed to read %s", path.c_str()));
  return bytes;
}

[[nodiscard]] std::uint32_t peek_u32_le(const std::uint8_t* bytes) noexcept {
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

[[nodiscard]] std::uint64_t peek_u64_le(const std::uint8_t* bytes) noexcept {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return value;
}

/// One segment file parsed frame by frame.  `on_record` (may be null) sees
/// every non-footer payload in order and returns false to stop the walk.
struct ParsedSegment {
  std::uint64_t first_record = 0;  ///< from the header
  std::uint64_t records = 0;       ///< valid records walked
  std::uint64_t valid_bytes = 0;   ///< prefix ending after the last valid frame
  std::uint64_t rolling_fnv = 14695981039346656037ULL;
  bool sealed = false;
  bool torn = false;
  bool stopped = false;  ///< on_record returned false
  std::string torn_detail;
};

using FrameSink =
    std::function<bool(std::uint64_t offset, std::span<const std::uint8_t>)>;

[[nodiscard]] ParsedSegment parse_segment(std::span<const std::uint8_t> bytes,
                                          const std::string& path,
                                          const FrameSink& on_record) {
  ParsedSegment parsed;
  const auto tear = [&](std::uint64_t offset, std::string detail) {
    parsed.torn = true;
    parsed.torn_detail = util::format("%s at byte %llu: %s", path.c_str(),
                                      static_cast<unsigned long long>(offset),
                                      detail.c_str());
  };

  if (bytes.size() < kSegmentHeaderBytes) {
    tear(0, "segment header truncated");
    return parsed;
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof kSegmentMagic) != 0) {
    tear(0, "not a journal segment (bad magic)");
    return parsed;
  }
  const std::uint32_t version = peek_u32_le(bytes.data() + 8);
  if (version > kJournalVersion)
    throw JournalError(util::format(
        "%s: journal segment version %u is newer than supported version %u",
        path.c_str(), version, kJournalVersion));
  if (version != kJournalVersion) {
    tear(8, util::format("unsupported segment version %u", version));
    return parsed;
  }
  if (journal_crc32(bytes.subspan(8, 12)) != peek_u32_le(bytes.data() + 20)) {
    tear(20, "segment header checksum mismatch");
    return parsed;
  }
  parsed.first_record = peek_u64_le(bytes.data() + 12);
  parsed.valid_bytes = kSegmentHeaderBytes;

  std::uint64_t pos = kSegmentHeaderBytes;
  while (pos < bytes.size()) {
    if (parsed.sealed) {
      tear(pos, "bytes after segment footer");
      return parsed;
    }
    if (bytes.size() - pos < kFrameHeaderBytes) {
      tear(pos, "torn frame header");
      return parsed;
    }
    const std::uint64_t length = peek_u32_le(bytes.data() + pos);
    const std::uint32_t crc = peek_u32_le(bytes.data() + pos + 4);
    if (length == 0 || length > kMaxFrameBytes) {
      tear(pos, util::format("implausible frame length %llu",
                             static_cast<unsigned long long>(length)));
      return parsed;
    }
    if (length > bytes.size() - pos - kFrameHeaderBytes) {
      tear(pos, "torn frame payload");
      return parsed;
    }
    const auto payload = bytes.subspan(pos + kFrameHeaderBytes,
                                       static_cast<std::size_t>(length));
    if (journal_crc32(payload) != crc) {
      tear(pos, "frame checksum mismatch");
      return parsed;
    }
    if (payload[0] == static_cast<std::uint8_t>(RecordType::kFooter)) {
      if (payload.size() != kFooterPayloadBytes) {
        tear(pos, "malformed segment footer");
        return parsed;
      }
      const std::uint64_t count = peek_u64_le(payload.data() + 1);
      const std::uint64_t fnv = peek_u64_le(payload.data() + 9);
      if (count != parsed.records) {
        tear(pos, util::format(
                      "footer claims %llu records, segment frames %llu",
                      static_cast<unsigned long long>(count),
                      static_cast<unsigned long long>(parsed.records)));
        return parsed;
      }
      if (fnv != parsed.rolling_fnv) {
        tear(pos, "footer payload hash mismatch");
        return parsed;
      }
      parsed.sealed = true;
      pos += kFrameHeaderBytes + length;
      parsed.valid_bytes = pos;
      continue;
    }
    if (on_record && !on_record(pos, payload)) {
      parsed.stopped = true;
      return parsed;
    }
    for (const std::uint8_t byte : payload) {
      parsed.rolling_fnv ^= byte;
      parsed.rolling_fnv *= 1099511628211ULL;
    }
    ++parsed.records;
    pos += kFrameHeaderBytes + length;
    parsed.valid_bytes = pos;
  }
  return parsed;
}

/// journal-*.seg files of `directory` as (name index, path), sorted.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kSegmentPrefix) || !name.ends_with(kSegmentSuffix))
      continue;
    const auto digits = std::string_view(name).substr(
        sizeof kSegmentPrefix - 1,
        name.size() - (sizeof kSegmentPrefix - 1) - (sizeof kSegmentSuffix - 1));
    const auto index = util::parse_u64(digits);
    if (!index) continue;  // foreign file; not ours to interpret
    segments.emplace_back(*index, entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

void fsync_directory(const std::string& directory) {
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t journal_crc32(std::span<const std::uint8_t> bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t byte : bytes)
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xffu];
  return crc ^ 0xffffffffu;
}

std::string_view to_string(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kEveryRecord:
      return "every-record";
  }
  return "unknown";
}

std::optional<FsyncPolicy> parse_fsync_policy(std::string_view name) noexcept {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kInterval, FsyncPolicy::kEveryRecord})
    if (name == to_string(policy)) return policy;
  return std::nullopt;
}

std::string_view to_string(RecordType type) noexcept {
  switch (type) {
    case RecordType::kConfig:
      return "config";
    case RecordType::kAnnounce:
      return "announce";
    case RecordType::kWithdraw:
      return "withdraw";
    case RecordType::kEpoch:
      return "epoch";
    case RecordType::kEvent:
      return "event";
    case RecordType::kReclassify:
      return "reclassify";
    case RecordType::kDecodeStats:
      return "decode-stats";
    case RecordType::kFooter:
      return "footer";
  }
  return "unknown";
}

// --- Record codec ----------------------------------------------------------

void encode_config_record(std::vector<std::uint8_t>& out,
                          const WindowConfig& config) {
  wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(RecordType::kConfig));
  wire::put_window_config(out, config);
}

void encode_announce_record(std::vector<std::uint8_t>& out,
                            const bgp::AsPath& path,
                            std::span<const Community> communities,
                            std::uint32_t timestamp) {
  wire::put<std::uint8_t>(out,
                          static_cast<std::uint8_t>(RecordType::kAnnounce));
  wire::put<std::uint32_t>(out, timestamp);
  wire::put_aspath(out, path);
  wire::put<std::uint32_t>(out, static_cast<std::uint32_t>(communities.size()));
  for (const Community community : communities)
    wire::put<std::uint32_t>(out, community.wire());
}

void encode_withdraw_record(std::vector<std::uint8_t>& out,
                            std::uint32_t timestamp) {
  wire::put<std::uint8_t>(out,
                          static_cast<std::uint8_t>(RecordType::kWithdraw));
  wire::put<std::uint32_t>(out, timestamp);
}

void encode_epoch_record(std::vector<std::uint8_t>& out, std::uint64_t epoch) {
  wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(RecordType::kEpoch));
  wire::put<std::uint64_t>(out, epoch);
}

void encode_event_record(std::vector<std::uint8_t>& out, std::uint64_t seq,
                         const LabelChange& change) {
  wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(RecordType::kEvent));
  wire::put<std::uint64_t>(out, seq);
  wire::put<std::uint32_t>(out, change.community.wire());
  wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(change.previous));
  wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(change.current));
  wire::put<std::uint64_t>(out, change.epoch);
}

void encode_reclassify_record(std::vector<std::uint8_t>& out,
                              std::uint64_t first_seq,
                              std::uint64_t event_count,
                              std::uint64_t updates_since_reclassify) {
  wire::put<std::uint8_t>(out,
                          static_cast<std::uint8_t>(RecordType::kReclassify));
  wire::put<std::uint64_t>(out, first_seq);
  wire::put<std::uint64_t>(out, event_count);
  wire::put<std::uint64_t>(out, updates_since_reclassify);
}

void encode_decode_stats_record(std::vector<std::uint8_t>& out,
                                std::uint64_t decode_ok,
                                std::uint64_t decode_skipped) {
  wire::put<std::uint8_t>(out,
                          static_cast<std::uint8_t>(RecordType::kDecodeStats));
  wire::put<std::uint64_t>(out, decode_ok);
  wire::put<std::uint64_t>(out, decode_skipped);
}

JournalRecord decode_record(std::span<const std::uint8_t> payload) {
  if (payload.empty()) throw JournalError("empty journal record payload");
  wire::Cursor cursor(payload);
  JournalRecord record;
  const std::uint8_t type = cursor.get<std::uint8_t>();
  switch (static_cast<RecordType>(type)) {
    case RecordType::kConfig:
      record.type = RecordType::kConfig;
      record.config = wire::get_window_config(cursor);
      break;
    case RecordType::kAnnounce: {
      record.type = RecordType::kAnnounce;
      record.timestamp = cursor.get<std::uint32_t>();
      record.path = wire::get_aspath(cursor);
      const std::uint32_t communities = cursor.get<std::uint32_t>();
      if (communities > cursor.remaining() / sizeof(std::uint32_t))
        throw JournalError("journal community count exceeds payload");
      record.communities.reserve(communities);
      for (std::uint32_t i = 0; i < communities; ++i)
        record.communities.push_back(
            Community::from_wire(cursor.get<std::uint32_t>()));
      break;
    }
    case RecordType::kWithdraw:
      record.type = RecordType::kWithdraw;
      record.timestamp = cursor.get<std::uint32_t>();
      break;
    case RecordType::kEpoch:
      record.type = RecordType::kEpoch;
      record.epoch = cursor.get<std::uint64_t>();
      break;
    case RecordType::kEvent:
      record.type = RecordType::kEvent;
      record.seq = cursor.get<std::uint64_t>();
      record.change.community =
          Community::from_wire(cursor.get<std::uint32_t>());
      record.change.previous = wire::get_intent(cursor);
      record.change.current = wire::get_intent(cursor);
      record.change.epoch = cursor.get<std::uint64_t>();
      break;
    case RecordType::kReclassify:
      record.type = RecordType::kReclassify;
      record.first_seq = cursor.get<std::uint64_t>();
      record.event_count = cursor.get<std::uint64_t>();
      record.updates_since_reclassify = cursor.get<std::uint64_t>();
      break;
    case RecordType::kDecodeStats:
      record.type = RecordType::kDecodeStats;
      record.decode_ok = cursor.get<std::uint64_t>();
      record.decode_skipped = cursor.get<std::uint64_t>();
      break;
    case RecordType::kFooter:
      throw JournalError("segment footer framed as a record");
    default:
      throw JournalError(
          util::format("unknown journal record type %u", type));
  }
  cursor.expect_end(to_string(record.type).data());
  return record;
}

// --- Writer ----------------------------------------------------------------

std::string segment_file_name(std::uint64_t first_record) {
  return util::format("%s%020llu%s", kSegmentPrefix,
                      static_cast<unsigned long long>(first_record),
                      kSegmentSuffix);
}

std::string segment_path(const std::string& directory,
                         std::uint64_t first_record) {
  return (fs::path(directory) / segment_file_name(first_record)).string();
}

JournalWriter::JournalWriter(JournalConfig config, std::uint64_t next_record,
                             std::optional<std::uint64_t> truncate_segment_to)
    : config_(std::move(config)), next_record_(next_record) {
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  if (ec)
    throw JournalError(util::format("cannot create journal directory %s: %s",
                                    config_.directory.c_str(),
                                    ec.message().c_str()));

  const auto segments = list_segments(config_.directory);
  // The active segment is the newest one framing records below next_record;
  // anything at or past next_record is stale (recovery already decided the
  // valid prefix) and is deleted or overwritten.
  const std::pair<std::uint64_t, std::string>* active = nullptr;
  for (const auto& segment : segments) {
    if (segment.first <= next_record_) active = &segment;
  }
  for (const auto& segment : segments) {
    if (active != nullptr && segment.first <= active->first) continue;
    if (std::remove(segment.second.c_str()) != 0)
      throw JournalError(util::format("cannot remove stale segment %s: %s",
                                      segment.second.c_str(),
                                      errno_detail().c_str()));
  }

  if (active == nullptr) {
    if (next_record_ != 0)
      throw JournalError(util::format(
          "journal %s has no segment covering record %llu",
          config_.directory.c_str(),
          static_cast<unsigned long long>(next_record_)));
    open_segment(0, /*fresh=*/true);
    return;
  }

  // Re-parse the active segment to rebuild the rolling footer state, after
  // applying the recovery-supplied torn-tail truncation.
  std::vector<std::uint8_t> bytes = read_file(active->second);
  if (truncate_segment_to && *truncate_segment_to < bytes.size())
    bytes.resize(static_cast<std::size_t>(*truncate_segment_to));
  const ParsedSegment parsed = parse_segment(bytes, active->second, nullptr);
  if (parsed.torn)
    throw JournalError(util::format(
        "journal %s is torn (%s); run recovery before appending",
        config_.directory.c_str(), parsed.torn_detail.c_str()));
  if (parsed.first_record != active->first)
    throw JournalError(util::format(
        "segment %s header frames record %llu but its name claims %llu",
        active->second.c_str(),
        static_cast<unsigned long long>(parsed.first_record),
        static_cast<unsigned long long>(active->first)));
  if (parsed.first_record + parsed.records != next_record_)
    throw JournalError(util::format(
        "segment %s frames records up to %llu, expected %llu",
        active->second.c_str(),
        static_cast<unsigned long long>(parsed.first_record + parsed.records),
        static_cast<unsigned long long>(next_record_)));

  if (parsed.sealed) {
    open_segment(next_record_, /*fresh=*/true);
    return;
  }

  segment_path_ = active->second;
  fd_ = ::open(segment_path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0)
    throw JournalError(util::format("cannot open %s for append: %s",
                                    segment_path_.c_str(),
                                    errno_detail().c_str()));
  if (::ftruncate(fd_, static_cast<off_t>(parsed.valid_bytes)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(parsed.valid_bytes), SEEK_SET) < 0) {
    const std::string detail = errno_detail();
    ::close(fd_);
    fd_ = -1;
    throw JournalError(util::format("cannot truncate %s: %s",
                                    segment_path_.c_str(), detail.c_str()));
  }
  segment_first_record_ = parsed.first_record;
  segment_bytes_ = parsed.valid_bytes;
  segment_records_ = parsed.records;
  rolling_fnv_ = parsed.rolling_fnv;
}

JournalWriter::~JournalWriter() {
  if (closed_) return;
  try {
    close();
  } catch (const JournalError&) {
    // Destructor: a failed seal leaves an unsealed (still recoverable)
    // segment; nothing useful to do with the error here.
  }
}

void JournalWriter::open_segment(std::uint64_t first_record, bool fresh) {
  segment_path_ = segment_path(config_.directory, first_record);
  fd_ = ::open(segment_path_.c_str(),
               O_WRONLY | O_CREAT | (fresh ? O_TRUNC : 0) | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw JournalError(util::format("cannot open %s: %s",
                                    segment_path_.c_str(),
                                    errno_detail().c_str()));
  segment_first_record_ = first_record;
  segment_records_ = 0;
  segment_bytes_ = 0;
  rolling_fnv_ = 14695981039346656037ULL;

  std::vector<std::uint8_t> header;
  header.reserve(kSegmentHeaderBytes);
  for (const char c : kSegmentMagic)
    header.push_back(static_cast<std::uint8_t>(c));
  wire::put<std::uint32_t>(header, kJournalVersion);
  wire::put<std::uint64_t>(header, first_record);
  wire::put<std::uint32_t>(header,
                           journal_crc32(std::span(header).subspan(8, 12)));
  write_bytes(header);
  if (config_.fsync != FsyncPolicy::kNever)
    fsync_directory(config_.directory);
}

void JournalWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw JournalError(util::format("write to %s failed: %s",
                                      segment_path_.c_str(),
                                      errno_detail().c_str()));
    }
    written += static_cast<std::size_t>(n);
  }
  segment_bytes_ += bytes.size();
  unsynced_bytes_ += bytes.size();
  stats_.bytes += bytes.size();
}

void JournalWriter::append(std::span<const std::uint8_t> payload) {
  if (closed_) throw JournalError("append to a closed journal");
  if (payload.empty() || payload.size() > kMaxFrameBytes)
    throw JournalError("journal record payload size out of range");

  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  wire::put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  wire::put<std::uint32_t>(frame, journal_crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  write_bytes(frame);

  for (const std::uint8_t byte : payload) {
    rolling_fnv_ ^= byte;
    rolling_fnv_ *= 1099511628211ULL;
  }
  ++segment_records_;
  ++next_record_;
  ++stats_.appends;

  fsync_policy_tick();
  if (segment_bytes_ >= config_.max_segment_bytes) {
    seal_segment();
    ++stats_.rotations;
    open_segment(next_record_, /*fresh=*/true);
  }
}

void JournalWriter::fsync_policy_tick() {
  switch (config_.fsync) {
    case FsyncPolicy::kNever:
      return;
    case FsyncPolicy::kEveryRecord:
      sync();
      return;
    case FsyncPolicy::kInterval:
      if (unsynced_bytes_ >= config_.fsync_interval_bytes) sync();
      return;
  }
}

void JournalWriter::sync() {
  if (fd_ < 0 || unsynced_bytes_ == 0) return;
  if (::fdatasync(fd_) != 0)
    throw JournalError(util::format("fdatasync of %s failed: %s",
                                    segment_path_.c_str(),
                                    errno_detail().c_str()));
  unsynced_bytes_ = 0;
  ++stats_.fsyncs;
}

void JournalWriter::seal_segment() {
  std::vector<std::uint8_t> payload;
  payload.reserve(kFooterPayloadBytes);
  wire::put<std::uint8_t>(payload,
                          static_cast<std::uint8_t>(RecordType::kFooter));
  wire::put<std::uint64_t>(payload, segment_records_);
  wire::put<std::uint64_t>(payload, rolling_fnv_);

  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  wire::put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  wire::put<std::uint32_t>(frame, journal_crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  write_bytes(frame);

  if (config_.fsync != FsyncPolicy::kNever) {
    unsynced_bytes_ = segment_bytes_;  // force the sync below
    sync();
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    throw JournalError(util::format("close of %s failed: %s",
                                    segment_path_.c_str(),
                                    errno_detail().c_str()));
  }
  fd_ = -1;
  unsynced_bytes_ = 0;
}

void JournalWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (fd_ < 0) return;
  seal_segment();
  if (config_.fsync != FsyncPolicy::kNever)
    fsync_directory(config_.directory);
}

// --- Scanner ---------------------------------------------------------------

ScanSummary scan_journal(const std::string& directory,
                         const ScanOptions& options, const RecordSink& sink) {
  ScanSummary summary;
  std::error_code ec;
  if (!fs::exists(directory, ec)) return summary;

  const auto files = list_segments(directory);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& [name_index, path] = files[i];
    SegmentInfo info;
    info.path = path;
    info.first_record = name_index;

    const auto tear = [&](std::string detail) {
      summary.torn = true;
      summary.torn_detail = std::move(detail);
      if (options.strict) throw JournalError(summary.torn_detail);
    };

    if (name_index != summary.records) {
      // A hole in the record space: either a segment went missing or a
      // stale future segment survived a tear in its predecessor.
      summary.segments.push_back(info);
      tear(util::format(
          "%s frames records from %llu but the journal is valid through %llu",
          path.c_str(), static_cast<unsigned long long>(name_index),
          static_cast<unsigned long long>(summary.records)));
      return summary;
    }

    std::vector<std::uint8_t> bytes;
    try {
      bytes = read_file(path);
    } catch (const JournalError& error) {
      summary.segments.push_back(info);
      tear(error.what());
      return summary;
    }
    info.bytes = bytes.size();

    std::uint64_t local_records = 0;
    const ParsedSegment parsed = parse_segment(
        bytes, path,
        [&](std::uint64_t offset, std::span<const std::uint8_t> payload) {
          if (sink == nullptr) {
            ++local_records;
            return true;
          }
          RecordLocation location;
          location.index = name_index + local_records;
          location.segment = i;
          location.offset = offset;
          if (!sink(location, payload)) return false;
          ++local_records;
          return true;
        });

    if (parsed.first_record != name_index && !parsed.torn) {
      summary.segments.push_back(info);
      tear(util::format(
          "%s: segment header frames record %llu but its name claims %llu",
          path.c_str(),
          static_cast<unsigned long long>(parsed.first_record),
          static_cast<unsigned long long>(name_index)));
      return summary;
    }

    info.records = parsed.records;
    info.valid_bytes = parsed.valid_bytes;
    info.sealed = parsed.sealed;
    summary.records += parsed.records;
    summary.segments.push_back(info);

    if (parsed.stopped) return summary;  // sink asked to stop; not a tear
    if (parsed.torn) {
      tear(parsed.torn_detail);
      return summary;
    }
  }
  return summary;
}

std::vector<mrt::RecordSpan> index_segment_frames(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSegmentHeaderBytes)
    throw JournalError("segment header truncated");
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof kSegmentMagic) != 0)
    throw JournalError("not a journal segment (bad magic)");
  std::vector<mrt::RecordSpan> spans;
  std::uint64_t pos = kSegmentHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes)
      throw JournalError("torn frame header");
    const std::uint64_t length = peek_u32_le(bytes.data() + pos);
    if (length == 0 || length > kMaxFrameBytes)
      throw JournalError("implausible frame length");
    if (length > bytes.size() - pos - kFrameHeaderBytes)
      throw JournalError("torn frame payload");
    spans.push_back({pos, kFrameHeaderBytes + length});
    pos += kFrameHeaderBytes + length;
  }
  return spans;
}

}  // namespace bgpintent::stream
