#include "stream/synth.hpp"

#include <map>
#include <sstream>
#include <tuple>

#include "mrt/mrt_file.hpp"
#include "util/rng.hpp"

namespace bgpintent::stream {

namespace {

/// Diff key: one (vantage point, prefix) slot of the observed table.
using SlotKey = std::tuple<bgp::Asn, std::uint32_t, std::uint32_t,
                           std::uint8_t>;

[[nodiscard]] SlotKey slot_key(const bgp::RibEntry& entry) noexcept {
  return {entry.vantage_point.asn, entry.vantage_point.address,
          entry.route.prefix.address(), entry.route.prefix.length()};
}

/// Vantage point id of a peer session, reconstructed from the entry (the
/// scenario uses one collector session per vantage point).
[[nodiscard]] bgp::VantagePointId peer_of(const bgp::RibEntry& entry) noexcept {
  return entry.vantage_point;
}

}  // namespace

SynthStreamStats write_update_stream(std::ostream& out,
                                     const SynthStreamConfig& config,
                                     util::ThreadPool* pool) {
  const routing::Scenario scenario = routing::Scenario::build(config.scenario);
  mrt::MrtWriter writer(out);
  SynthStreamStats stats;

  const std::uint32_t epoch_seconds =
      config.epoch_seconds == 0 ? 1 : config.epoch_seconds;
  const auto stamp = [&](std::uint32_t epoch, std::uint64_t index) {
    return config.start_timestamp + epoch * epoch_seconds +
           static_cast<std::uint32_t>(index % epoch_seconds);
  };
  const auto announce = [&](const bgp::RibEntry& entry, std::uint32_t epoch,
                            std::uint64_t index) {
    writer.write_update(peer_of(entry), entry.route, stamp(epoch, index));
    ++stats.records;
    ++stats.announcements;
  };
  const auto withdraw = [&](const bgp::RibEntry& entry, std::uint32_t epoch,
                            std::uint64_t index) {
    const bgp::Prefix prefix = entry.route.prefix;
    writer.write_withdraw(peer_of(entry), std::span(&prefix, 1),
                          stamp(epoch, index));
    ++stats.records;
    ++stats.withdrawals;
  };

  std::vector<bgp::RibEntry> previous = scenario.day_entries(0, pool);
  {
    std::uint64_t index = 0;
    for (const bgp::RibEntry& entry : previous) announce(entry, 0, index++);
  }

  for (std::uint32_t epoch = 1; epoch < config.epochs; ++epoch) {
    std::vector<bgp::RibEntry> current = scenario.day_entries(epoch, pool);

    std::map<SlotKey, const bgp::RibEntry*> previous_by_slot;
    for (const bgp::RibEntry& entry : previous)
      previous_by_slot.emplace(slot_key(entry), &entry);

    std::uint64_t index = 0;
    std::map<SlotKey, bool> still_present;
    for (const bgp::RibEntry& entry : current) {
      const auto slot = slot_key(entry);
      still_present.emplace(slot, true);
      const auto before = previous_by_slot.find(slot);
      if (before == previous_by_slot.end() ||
          !(before->second->route == entry.route))
        announce(entry, epoch, index++);
    }
    for (const bgp::RibEntry& entry : previous)
      if (!still_present.contains(slot_key(entry)))
        withdraw(entry, epoch, index++);

    if (config.flap_fraction > 0.0) {
      util::Rng rng(config.scenario.workload_seed +
                    0x9e3779b97f4a7c15ULL * epoch);
      for (const bgp::RibEntry& entry : current) {
        if (rng.uniform01() < config.flap_fraction) {
          withdraw(entry, epoch, index++);
          announce(entry, epoch, index++);
        }
      }
    }

    previous = std::move(current);
  }
  return stats;
}

SynthStream generate_update_stream(const SynthStreamConfig& config,
                                   util::ThreadPool* pool) {
  std::ostringstream out(std::ios::binary);
  SynthStream stream;
  stream.stats = write_update_stream(out, config, pool);
  const std::string bytes = out.str();
  stream.bytes.assign(bytes.begin(), bytes.end());
  return stream;
}

}  // namespace bgpintent::stream
