#include "stream/recovery.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>

#include "stream/wire.hpp"
#include "util/strings.hpp"

namespace bgpintent::stream {

namespace fs = std::filesystem;

/// Applies decoded journal records to a StreamEngine through its internals
/// (friend access), bypassing the engine's own journaling so replay never
/// re-appends what it reads.
///
/// The core of the determinism argument: updates re-apply verbatim and
/// tick the cadence counter; kReclassify markers re-run reclassify_dirty()
/// at the original pass boundaries, which regenerates the pass's events —
/// identical content and sequence numbers, since events are a pure
/// function of window evidence at the boundary.  Journaled kEvent copies
/// are buffered in `pending_` until their sealing marker and verified as a
/// prefix of the regenerated pass (events already covered by a restored
/// checkpoint are cross-checked against the buffered log instead).
class JournalReplayer {
 public:
  JournalReplayer(StreamEngine& engine, bool strict)
      : engine_(&engine), strict_(strict) {}

  /// Applies one record.  Returns false (tolerant) on inconsistency —
  /// the caller treats `failed_at()` as a truncation point; strict throws.
  [[nodiscard]] bool apply(std::uint64_t index, const JournalRecord& record) {
    std::lock_guard<std::mutex> lock(engine_->mutex_);
    switch (record.type) {
      case RecordType::kConfig:
        if (index != 0)
          return fail(index, "kConfig record past the head of the journal");
        if (!wire::same_window_config(record.config,
                                      engine_->window_.config()))
          return fail(index,
                      "journal config disagrees with the engine config");
        return true;

      case RecordType::kAnnounce: {
        if (!pending_.empty())
          return fail(index, "update interleaved into an event pass");
        bgp::RibEntry entry;
        entry.route.path = record.path;
        entry.route.communities = record.communities;
        engine_->window_.announce(entry, record.timestamp);
        ++engine_->updates_since_reclassify_;
        return true;
      }

      case RecordType::kWithdraw: {
        if (!pending_.empty())
          return fail(index, "update interleaved into an event pass");
        engine_->window_.withdraw(bgp::VantagePointId{}, bgp::Prefix{},
                                  record.timestamp);
        ++engine_->updates_since_reclassify_;
        return true;
      }

      case RecordType::kEpoch:
        if (!engine_->window_.started() ||
            engine_->window_.current_epoch() != record.epoch)
          return fail(
              index,
              util::format("epoch marker %llu disagrees with window epoch %llu",
                           static_cast<unsigned long long>(record.epoch),
                           static_cast<unsigned long long>(
                               engine_->window_.current_epoch())));
        return true;

      case RecordType::kEvent: {
        const std::uint64_t next = engine_->next_seq_;
        if (!pending_.empty() || record.seq >= next) {
          if (record.seq != next + pending_.size())
            return fail(index, util::format(
                                   "event seq %llu breaks the sequence at %llu",
                                   static_cast<unsigned long long>(record.seq),
                                   static_cast<unsigned long long>(
                                       next + pending_.size())));
          pending_.push_back(Event{record.seq, record.change});
          return true;
        }
        // Already reflected by the restored checkpoint: cross-check
        // against the buffered log when the seq is still buffered.
        const auto& events = engine_->events_;
        const auto it = std::lower_bound(
            events.begin(), events.end(), record.seq,
            [](const Event& event, std::uint64_t seq) {
              return event.seq < seq;
            });
        if (it == events.end() || it->seq != record.seq)
          return true;  // trimmed before the checkpoint; nothing to check
        if (it->change != record.change)
          return fail(index,
                      util::format("journaled event %llu disagrees with the "
                                   "recovered event log",
                                   static_cast<unsigned long long>(record.seq)));
        return true;
      }

      case RecordType::kReclassify: {
        const std::uint64_t next = engine_->next_seq_;
        if (record.first_seq + record.event_count <= next &&
            record.first_seq < next) {
          // The whole pass predates the checkpoint; only its cadence
          // effect is replayed.
          if (!pending_.empty())
            return fail(index, "pass marker inside a newer event pass");
          engine_->updates_since_reclassify_ = record.updates_since_reclassify;
          return true;
        }
        if (record.first_seq != next)
          return fail(
              index,
              util::format("pass marker for seq %llu but the engine is at %llu",
                           static_cast<unsigned long long>(record.first_seq),
                           static_cast<unsigned long long>(next)));
        return run_pass(index, record.event_count,
                        record.updates_since_reclassify);
      }

      case RecordType::kDecodeStats:
        if (!pending_.empty())
          return fail(index, "decode-stats record inside an event pass");
        engine_->decode_ok_ += record.decode_ok;
        engine_->decode_errors_ += record.decode_skipped;
        return true;

      case RecordType::kFooter:
        return fail(index, "segment footer framed as a record");
    }
    return fail(index, "unknown record type");
  }

  /// Resolves a torn tail: a crash can lose a pass's sealing marker (or
  /// the batch pass entirely) after its updates were journaled.  The
  /// uninterrupted reference run over the same record prefix *does* run
  /// those passes, so recovery runs them here.
  [[nodiscard]] bool finish(std::uint64_t end_index) {
    std::lock_guard<std::mutex> lock(engine_->mutex_);
    if (engine_->updates_since_reclassify_ >= StreamEngine::kReclassifyBatch) {
      // The batch cadence fired on the last journaled update; its pass
      // marker was torn off.
      engine_->updates_since_reclassify_ = 0;
      return run_pass(end_index, std::nullopt, 0);
    }
    if (!pending_.empty()) {
      // A query- or end-of-source-triggered pass lost its marker; the
      // cadence counter is unaffected by such passes.
      return run_pass(end_index, std::nullopt,
                      engine_->updates_since_reclassify_);
    }
    return true;
  }

  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

  static void set_recovery_counters(StreamEngine& engine,
                                    std::uint64_t recovered_events,
                                    std::uint64_t torn_tail_truncated) {
    std::lock_guard<std::mutex> lock(engine.mutex_);
    engine.recovered_events_ = recovered_events;
    engine.torn_tail_truncated_ = torn_tail_truncated;
  }

  [[nodiscard]] static std::uint64_t last_seq(const StreamEngine& engine) {
    std::lock_guard<std::mutex> lock(engine.mutex_);
    return engine.next_seq_ - 1;
  }

 private:
  /// Re-runs one reclassification pass; `expected_events` is the marker's
  /// count (nullopt for torn-tail passes, which have no marker to check).
  [[nodiscard]] bool run_pass(std::uint64_t index,
                              std::optional<std::uint64_t> expected_events,
                              std::uint64_t counter_after) {
    std::vector<LabelChange> changes = engine_->window_.reclassify_dirty();
    if (expected_events && changes.size() != *expected_events)
      return fail(index,
                  util::format("pass regenerated %zu events, marker claims %llu",
                               changes.size(),
                               static_cast<unsigned long long>(
                                   *expected_events)));
    if (pending_.size() > changes.size())
      return fail(index, "journal carries more events than the pass "
                         "regenerates");
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].seq != engine_->next_seq_ + i ||
          pending_[i].change != changes[i])
        return fail(index,
                    util::format("journaled event %llu disagrees with the "
                                 "regenerated pass",
                                 static_cast<unsigned long long>(
                                     pending_[i].seq)));
    }
    pending_.clear();
    engine_->publish_locked(std::move(changes));
    engine_->updates_since_reclassify_ = counter_after;
    return true;
  }

  bool fail(std::uint64_t index, std::string what) {
    detail_ = util::format("journal record %llu: %s",
                           static_cast<unsigned long long>(index),
                           what.c_str());
    if (strict_) throw JournalError(detail_);
    return false;
  }

  StreamEngine* engine_;
  bool strict_;
  std::vector<Event> pending_;  ///< journaled events awaiting their marker
  std::string detail_;
};

namespace {

/// Drives a scan's records through a JournalReplayer, decoding payloads
/// and skipping records below `from_record`.  Returns the index one past
/// the last applied record; sets `failed` when the replayer (or a decode)
/// rejected a record there.
struct ReplayDrive {
  std::uint64_t applied = 0;
  std::uint64_t stopped_at = 0;
  bool failed = false;
  std::string detail;
};

[[nodiscard]] ReplayDrive drive_replay(JournalReplayer& replayer,
                                       const std::string& directory,
                                       std::uint64_t from_record,
                                       bool strict) {
  ReplayDrive drive;
  const ScanSummary scan = scan_journal(
      directory, ScanOptions{strict},
      [&](const RecordLocation& location,
          std::span<const std::uint8_t> payload) {
        if (location.index < from_record) return true;
        JournalRecord record;
        try {
          record = decode_record(payload);
        } catch (const JournalError& error) {
          if (strict) throw;
          drive.failed = true;
          drive.stopped_at = location.index;
          drive.detail = error.what();
          return false;
        }
        if (!replayer.apply(location.index, record)) {
          drive.failed = true;
          drive.stopped_at = location.index;
          drive.detail = replayer.detail();
          return false;
        }
        ++drive.applied;
        return true;
      });
  if (!drive.failed) {
    drive.stopped_at = scan.records;
    if (scan.torn) drive.detail = scan.torn_detail;
  }
  return drive;
}

/// Reads the little-endian u32 at `bytes[pos]`.
[[nodiscard]] std::uint64_t frame_length_at(
    const std::vector<std::uint8_t>& bytes, std::uint64_t pos) {
  return static_cast<std::uint64_t>(bytes[pos]) |
         (static_cast<std::uint64_t>(bytes[pos + 1]) << 8) |
         (static_cast<std::uint64_t>(bytes[pos + 2]) << 16) |
         (static_cast<std::uint64_t>(bytes[pos + 3]) << 24);
}

/// Physically truncates `directory` to its first `records` journal
/// records: the segment holding the boundary is cut after its last valid
/// frame, every segment entirely past the boundary and every checkpoint
/// claiming records past it is removed.  Returns the number of files
/// truncated or removed.
std::uint64_t truncate_journal_dir(const std::string& directory,
                                   std::uint64_t records) {
  std::uint64_t actions = 0;
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("journal-") && name.ends_with(".seg")) {
      const auto digits = std::string_view(name).substr(8, name.size() - 12);
      if (const auto index = util::parse_u64(digits))
        segments.emplace_back(*index, entry.path().string());
      else if (std::remove(entry.path().string().c_str()) == 0)
        ++actions;  // malformed segment name: not part of any valid prefix
    } else if (name.starts_with("checkpoint-") && name.ends_with(".ckpt")) {
      const auto digits = std::string_view(name).substr(11, name.size() - 16);
      const auto covered = util::parse_u64(digits);
      if (!covered || *covered > records)
        if (std::remove(entry.path().string().c_str()) == 0) ++actions;
    }
  }
  std::sort(segments.begin(), segments.end());

  std::string boundary_path;
  std::uint64_t boundary_first = 0;
  bool have_boundary = false;
  for (const auto& [first, path] : segments) {
    if (first >= records) {  // holds no record below the cut: remove whole
      if (std::remove(path.c_str()) == 0) ++actions;
      continue;
    }
    if (!have_boundary || first > boundary_first) {
      boundary_first = first;
      boundary_path = path;
      have_boundary = true;
    }
  }
  if (!have_boundary) return actions;

  // Walk the boundary segment's frames to find where the cut lands.  A
  // footer frame consumes no record index: one right at the cut belongs
  // to the kept prefix (the segment was sealed before the tear), one past
  // a mid-segment cut is dropped with the rest.
  std::ifstream in(boundary_path, std::ios::binary);
  std::vector<std::uint8_t> bytes;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0)
    bytes.insert(bytes.end(), buffer, buffer + in.gcount());

  std::uint64_t pos = kSegmentHeaderBytes;
  std::uint64_t index = boundary_first;
  while (pos + kFrameHeaderBytes <= bytes.size()) {
    const std::uint64_t length = frame_length_at(bytes, pos);
    if (length == 0 || length > bytes.size() - pos - kFrameHeaderBytes) break;
    // The type byte of a corrupt frame cannot be trusted (a damaged
    // footer must be cut, not kept as the segment's seal): verify the
    // payload checksum before stepping over any frame.
    const std::uint32_t stored = static_cast<std::uint32_t>(
        frame_length_at(bytes, pos + 4));
    const std::span<const std::uint8_t> payload(
        bytes.data() + pos + kFrameHeaderBytes, length);
    if (journal_crc32(payload) != stored) break;
    const bool footer = bytes[pos + kFrameHeaderBytes] ==
                        static_cast<std::uint8_t>(RecordType::kFooter);
    if (!footer && index >= records) break;
    pos += kFrameHeaderBytes + length;
    if (footer) break;  // a footer ends the segment either way
    ++index;
  }

  if (pos < bytes.size()) {
    std::error_code resize_ec;
    fs::resize_file(boundary_path, pos, resize_ec);
    if (!resize_ec) ++actions;
  }
  return actions;
}

}  // namespace

std::unique_ptr<StreamEngine> recover_stream(const JournalConfig& config,
                                             const RecoveryOptions& options,
                                             RecoveryReport* report_out) {
  RecoveryReport report;
  const std::string& directory = config.directory;

  // Pass 1: measure the valid prefix and capture the record-0 config.
  // Strict mode throws out of scan_journal at the first tear.
  std::optional<WindowConfig> journal_config;
  const ScanSummary scan = scan_journal(
      directory, ScanOptions{options.strict},
      [&](const RecordLocation& location,
          std::span<const std::uint8_t> payload) {
        if (location.index != 0) return true;
        try {
          const JournalRecord record = decode_record(payload);
          if (record.type == RecordType::kConfig)
            journal_config = record.config;
        } catch (const JournalError&) {
          if (options.strict) throw;
        }
        return true;
      });
  std::uint64_t valid_records = scan.records;
  std::uint64_t torn_actions = 0;
  if (scan.torn) {
    report.torn_detail = scan.torn_detail;
    torn_actions += truncate_journal_dir(directory, valid_records);
  }

  // Checkpoint selection: newest loadable checkpoint covering <= the
  // valid prefix.  Tolerant recovery falls back past damaged files.
  std::optional<CheckpointData> checkpoint;
  std::uint64_t checkpoint_record = 0;
  std::error_code exists_ec;
  auto checkpoints = fs::exists(directory, exists_ec)
                         ? list_checkpoints(directory)
                         : std::vector<std::pair<std::uint64_t, std::string>>{};
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    if (it->first > valid_records) continue;
    try {
      checkpoint = load_checkpoint(it->second);
      checkpoint_record = it->first;
      break;
    } catch (const JournalError&) {
      if (options.strict) throw;
      // fall through to an older checkpoint, ultimately to plain replay
    }
  }

  // Config precedence: checkpoint > journal record 0 > caller flags.
  WindowConfig final_config = options.config;
  if (checkpoint) {
    final_config = checkpoint->config;
  } else if (journal_config) {
    final_config = *journal_config;
  }
  report.config_overridden =
      !wire::same_window_config(final_config, options.config);

  auto engine = std::make_unique<StreamEngine>(final_config, options.orgs);
  if (checkpoint) {
    engine->restore_state(checkpoint->state);
    report.used_checkpoint = true;
    report.checkpoint_record = checkpoint_record;
  }

  // Pass 2: replay the tail.  A logical replay failure in tolerant mode
  // becomes a new truncation point — state is rebuilt from scratch below
  // the failed record so the engine never carries half-applied state.
  JournalReplayer replayer(*engine, options.strict);
  ReplayDrive drive = drive_replay(replayer, directory,
                                   checkpoint_record, options.strict);
  if (drive.failed) {
    report.torn_detail = drive.detail;
    valid_records = drive.stopped_at;
    torn_actions += truncate_journal_dir(directory, valid_records);
    // The damaged record may invalidate the restored checkpoint's claim
    // (it covered records the replay no longer trusts?  No — a
    // checkpoint covers records *before* the failure point, which is
    // >= checkpoint_record).  Re-recover over the now-clean prefix.
    engine = std::make_unique<StreamEngine>(final_config, options.orgs);
    if (checkpoint) engine->restore_state(checkpoint->state);
    JournalReplayer retry(*engine, options.strict);
    ReplayDrive second = drive_replay(retry, directory, checkpoint_record,
                                      options.strict);
    if (second.failed)
      throw JournalError(util::format(
          "journal %s failed replay twice after truncation: %s",
          directory.c_str(), second.detail.c_str()));
    if (!retry.finish(valid_records))
      throw JournalError(util::format(
          "journal %s torn-tail pass failed after truncation: %s",
          directory.c_str(), retry.detail().c_str()));
    report.records_replayed = second.applied;
  } else {
    if (!replayer.finish(valid_records)) {
      // finish() can only fail on a pending-event mismatch; treat like a
      // replay failure at the tail: drop the trailing pass records.
      throw JournalError(util::format(
          "journal %s torn-tail pass disagrees with regenerated events: %s",
          directory.c_str(), replayer.detail().c_str()));
    }
    report.records_replayed = drive.applied;
  }

  const std::uint64_t recovered_events = JournalReplayer::last_seq(*engine);
  JournalReplayer::set_recovery_counters(*engine, recovered_events,
                                         torn_actions);

  report.journal_records = valid_records;
  report.recovered_events = recovered_events;
  report.torn_tail_truncated = torn_actions;
  report.fresh = valid_records == 0 && !checkpoint;

  // Resume the journal where the valid prefix ends; a fresh directory
  // gets its kConfig record 0 from attach_journal.
  auto writer = std::make_unique<JournalWriter>(config, valid_records);
  engine->attach_journal(std::move(writer),
                         options.checkpoint_interval_updates);

  if (report_out) *report_out = report;
  return engine;
}

ReplayReport replay_journal(StreamEngine& engine, const std::string& directory,
                            std::uint64_t from_record, bool strict) {
  ReplayReport report;
  JournalReplayer replayer(engine, strict);
  ReplayDrive drive = drive_replay(replayer, directory, from_record, strict);
  report.records_applied = drive.applied;
  report.stopped_at = drive.stopped_at;
  if (drive.failed) {
    report.complete = false;
    report.detail = drive.detail;
    return report;
  }
  if (!replayer.finish(drive.stopped_at)) {
    report.complete = false;
    report.detail = replayer.detail();
    return report;
  }
  if (!drive.detail.empty()) report.detail = drive.detail;  // tear note
  return report;
}

JournalInspection inspect_journal(const std::string& directory) {
  JournalInspection inspection;
  inspection.scan = scan_journal(
      directory, {},
      [&](const RecordLocation&, std::span<const std::uint8_t> payload) {
        try {
          const JournalRecord record = decode_record(payload);
          const auto raw = static_cast<std::size_t>(record.type);
          if (raw < inspection.type_counts.size())
            ++inspection.type_counts[raw];
          if (record.type == RecordType::kEvent)
            inspection.last_event_seq =
                std::max(inspection.last_event_seq, record.seq);
          if (record.type == RecordType::kReclassify &&
              record.event_count > 0)
            inspection.last_event_seq =
                std::max(inspection.last_event_seq,
                         record.first_seq + record.event_count - 1);
        } catch (const JournalError&) {
          ++inspection.undecodable;
        }
        return true;
      });
  std::error_code ec;
  if (fs::exists(directory, ec))
    inspection.checkpoints = list_checkpoints(directory);
  return inspection;
}

}  // namespace bgpintent::stream
