// Segmented, checksummed write-ahead journal for the stream engine.
//
// A journaled StreamEngine appends every update it applies — announcements,
// withdrawals, epoch-advance markers, label-change events, and the
// reclassification-pass markers that seal them — to an append-only journal
// *before* the corresponding events are published to subscribers.  Replaying
// the journal into a fresh engine therefore reproduces labels, event
// sequence numbers, and window ring contents bit-identically (the events
// themselves are a deterministic function of the evidence plus the pass
// boundaries, so replay regenerates them and the journaled copies double as
// cross-checks).  Recovery is checkpoint-load plus bounded tail replay; see
// stream/recovery.hpp and docs/STREAMING.md §6 for the full story.
//
// On-disk layout (all integers little-endian):
//
//   segment file  journal-<first-record-index>.seg
//     offset  size  field
//     0       8     magic "BGPIJSEG"
//     8       4     format version (u32, currently 1)
//     12      8     index of the first record framed in this segment (u64)
//     20      4     CRC-32 of bytes [8, 20)
//     24      ...   frames
//
//   frame (one per record, plus one trailing footer frame per sealed
//   segment)
//     offset  size  field
//     0       4     payload length N (u32)
//     4       4     CRC-32 of the payload bytes (u32)
//     8       N     payload; payload[0] is the RecordType
//
//   footer payload (RecordType::kFooter; does not consume a record index)
//     type u8 · record count u64 · FNV-1a-64 over all record payloads
//
// Segments rotate when they exceed JournalConfig::max_segment_bytes: the
// writer seals the current file with a footer frame and opens the next one,
// named after the next record index (so the file name alone orders and
// frames the record space).  Recovery scans and CRC-verifies every segment
// and requires record-index contiguity from 0 — segments must never be
// pruned by hand, even below a checkpoint: a missing or corrupt early
// segment reads as a hole, truncating recoverable state at that point.
// A segment without a footer is simply the active tail — a crash mid-write
// leaves a torn final frame, which recovery truncates (tolerant) or refuses
// (strict).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "mrt/fault.hpp"
#include "stream/window.hpp"

namespace bgpintent::stream {

/// Thrown on malformed, corrupt, or unwritable journal state.  In tolerant
/// recovery most of these become a truncation point instead of a throw.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The segment format version this build writes; readers accept exactly
/// this version (the frame stream is not self-describing across versions).
inline constexpr std::uint32_t kJournalVersion = 1;

/// Bytes of a segment header (magic + version + first index + header CRC).
inline constexpr std::size_t kSegmentHeaderBytes = 24;

/// Bytes of a frame header (payload length + payload CRC).
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the frame checksum.
[[nodiscard]] std::uint32_t journal_crc32(
    std::span<const std::uint8_t> bytes) noexcept;

/// When appended bytes are pushed through fdatasync (docs/STREAMING.md §6
/// spells out the trade-offs; the default is kInterval).
enum class FsyncPolicy : std::uint8_t {
  kNever,        ///< rely on the OS page cache; fastest, widest loss window
  kInterval,     ///< fdatasync every fsync_interval_bytes and at rotation
  kEveryRecord,  ///< fdatasync after every append; slowest, loses nothing
};

[[nodiscard]] std::string_view to_string(FsyncPolicy policy) noexcept;
/// Parses "never" / "interval" / "every-record".
[[nodiscard]] std::optional<FsyncPolicy> parse_fsync_policy(
    std::string_view name) noexcept;

struct JournalConfig {
  std::string directory;
  /// Rotation threshold: a segment is sealed once its size (header plus
  /// frames) reaches this many bytes.  Small values are useful in tests.
  std::uint64_t max_segment_bytes = 4ull << 20;
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  /// kInterval only: bytes appended between fdatasync calls.
  std::uint64_t fsync_interval_bytes = 1ull << 20;
};

// --- Records ---------------------------------------------------------------

enum class RecordType : std::uint8_t {
  kConfig = 1,      ///< WindowConfig of a fresh journal (always record 0)
  kAnnounce = 2,    ///< timestamp + AS path + communities of one update
  kWithdraw = 3,    ///< timestamp of one withdrawal
  kEpoch = 4,       ///< window epoch advanced to `epoch` (cross-check)
  kEvent = 5,       ///< one sequenced label-change event (cross-check)
  kReclassify = 6,  ///< seals one reclassification pass
  kDecodeStats = 7, ///< end-of-source decode counter fold
  kFooter = 8,      ///< segment seal; never consumes a record index
};

[[nodiscard]] std::string_view to_string(RecordType type) noexcept;

/// One decoded journal record.  Only the fields of the tagged `type` are
/// meaningful; the rest stay default-constructed.
struct JournalRecord {
  RecordType type{};

  WindowConfig config;  ///< kConfig

  std::uint32_t timestamp = 0;         ///< kAnnounce / kWithdraw
  bgp::AsPath path;                    ///< kAnnounce
  std::vector<Community> communities;  ///< kAnnounce

  std::uint64_t epoch = 0;  ///< kEpoch

  std::uint64_t seq = 0;  ///< kEvent
  LabelChange change;     ///< kEvent

  std::uint64_t first_seq = 0;    ///< kReclassify: seq of the pass's first event
  std::uint64_t event_count = 0;  ///< kReclassify: events the pass emitted
  /// kReclassify: the engine's reclassify-cadence counter after the pass
  /// (0 when the pass was batch-triggered), so replay keeps the same
  /// mid-stream reclassification boundaries as the original run.
  std::uint64_t updates_since_reclassify = 0;

  std::uint64_t decode_ok = 0;       ///< kDecodeStats
  std::uint64_t decode_skipped = 0;  ///< kDecodeStats
};

/// Encoders append one record payload (type byte included) into `out`
/// without clearing it first.
void encode_config_record(std::vector<std::uint8_t>& out,
                          const WindowConfig& config);
void encode_announce_record(std::vector<std::uint8_t>& out,
                            const bgp::AsPath& path,
                            std::span<const Community> communities,
                            std::uint32_t timestamp);
void encode_withdraw_record(std::vector<std::uint8_t>& out,
                            std::uint32_t timestamp);
void encode_epoch_record(std::vector<std::uint8_t>& out, std::uint64_t epoch);
void encode_event_record(std::vector<std::uint8_t>& out, std::uint64_t seq,
                         const LabelChange& change);
void encode_reclassify_record(std::vector<std::uint8_t>& out,
                              std::uint64_t first_seq,
                              std::uint64_t event_count,
                              std::uint64_t updates_since_reclassify);
void encode_decode_stats_record(std::vector<std::uint8_t>& out,
                                std::uint64_t decode_ok,
                                std::uint64_t decode_skipped);

/// Decodes one record payload.  Throws JournalError on malformed input
/// (unknown type, truncated fields, trailing bytes, invalid intents).
[[nodiscard]] JournalRecord decode_record(std::span<const std::uint8_t> payload);

// --- Writer ----------------------------------------------------------------

/// Cumulative writer-side counters (per process; recovery counters live on
/// the engine).  Surfaced through EngineStats and serve STATS.
struct JournalWriterStats {
  std::uint64_t appends = 0;  ///< record frames appended
  std::uint64_t bytes = 0;    ///< bytes written (headers, frames, footers)
  std::uint64_t fsyncs = 0;
  std::uint64_t rotations = 0;
};

/// Appends framed records to the active segment of a journal directory,
/// rotating and fsyncing per JournalConfig.  Not thread-safe: the stream
/// engine calls it under its own mutex.
class JournalWriter {
 public:
  /// Opens the directory (creating it if missing) for appending with
  /// `next_record` as the index of the next appended record.  When
  /// `truncate_segment_to` names a byte length for the active segment, the
  /// file is first truncated to that many bytes (torn-tail recovery);
  /// segments framing records >= next_record are deleted.  A fresh
  /// directory starts segment journal-0.seg.  Throws JournalError on IO
  /// failure.
  JournalWriter(JournalConfig config, std::uint64_t next_record,
                std::optional<std::uint64_t> truncate_segment_to = std::nullopt);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Frames and appends one record payload; applies the fsync policy and
  /// rotates the segment afterwards when it crossed max_segment_bytes.
  /// Throws JournalError on IO failure.
  void append(std::span<const std::uint8_t> payload);

  /// Forces an fdatasync of the active segment regardless of policy.
  void sync();

  /// Seals the active segment with a footer frame and closes it.  Called
  /// by the destructor when not invoked explicitly; explicit calls get IO
  /// errors as exceptions instead of swallowed.
  void close();

  [[nodiscard]] const JournalConfig& config() const noexcept { return config_; }
  [[nodiscard]] const JournalWriterStats& stats() const noexcept {
    return stats_;
  }
  /// Index the next appended record will get.
  [[nodiscard]] std::uint64_t next_record() const noexcept {
    return next_record_;
  }

 private:
  void open_segment(std::uint64_t first_record, bool fresh);
  void write_bytes(std::span<const std::uint8_t> bytes);
  void seal_segment();
  void fsync_policy_tick();

  JournalConfig config_;
  int fd_ = -1;
  std::string segment_path_;
  std::uint64_t next_record_ = 0;
  std::uint64_t segment_first_record_ = 0;
  std::uint64_t segment_bytes_ = 0;   // bytes in the active segment
  std::uint64_t segment_records_ = 0; // records framed in the active segment
  std::uint64_t rolling_fnv_ = 0;     // footer hash over record payloads
  std::uint64_t unsynced_bytes_ = 0;
  JournalWriterStats stats_;
  bool closed_ = false;
};

// --- Scanner ---------------------------------------------------------------

/// One segment file as found on disk, in record order.
struct SegmentInfo {
  std::string path;
  std::uint64_t first_record = 0;
  std::uint64_t records = 0;     ///< valid records framed (footer excluded)
  std::uint64_t bytes = 0;       ///< file size on disk
  std::uint64_t valid_bytes = 0; ///< prefix ending after the last valid frame
  bool sealed = false;           ///< ends in a verified footer frame
};

/// Where one record's frame lives, for truncation bookkeeping.
struct RecordLocation {
  std::uint64_t index = 0;        ///< global record index
  std::size_t segment = 0;        ///< index into ScanSummary::segments
  std::uint64_t offset = 0;       ///< frame start within the segment file
};

struct ScanSummary {
  std::vector<SegmentInfo> segments;
  std::uint64_t records = 0;  ///< total valid records across segments
  bool torn = false;          ///< a torn/corrupt frame (or segment) was hit
  std::string torn_detail;    ///< human-readable description of the tear
};

struct ScanOptions {
  /// Strict scans throw JournalError at the first torn or corrupt frame;
  /// tolerant scans stop there and report it in the summary.
  bool strict = false;
};

/// Callback per valid record, in index order.  Returning false stops the
/// scan early (used by replay consistency checks to convert a logical
/// error into a truncation point).
using RecordSink =
    std::function<bool(const RecordLocation&, std::span<const std::uint8_t>)>;

/// Scans every journal-*.seg of `directory` in record order, verifying
/// headers, frame CRCs, footers, and cross-segment record-index continuity.
/// Missing directories scan as empty.  The sink may be null (pure
/// validation scan).
[[nodiscard]] ScanSummary scan_journal(const std::string& directory,
                                       const ScanOptions& options = {},
                                       const RecordSink& sink = nullptr);

/// Frames one raw segment image into record-frame spans (the 8-byte frame
/// header plus payload; the 24-byte segment header is excluded).  Throws
/// JournalError if the image is not a valid segment — this is the strict
/// framer behind journal fault injection, the stream-side analogue of
/// mrt::index_records.
[[nodiscard]] std::vector<mrt::RecordSpan> index_segment_frames(
    std::span<const std::uint8_t> bytes);

/// "journal-<index>.seg" (zero-padded so lexicographic order is record
/// order) under `directory`.
[[nodiscard]] std::string segment_file_name(std::uint64_t first_record);
[[nodiscard]] std::string segment_path(const std::string& directory,
                                       std::uint64_t first_record);

}  // namespace bgpintent::stream
