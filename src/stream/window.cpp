#include "stream/window.hpp"

#include <algorithm>
#include <stdexcept>

#include "bgp/asn.hpp"
#include "core/labeling.hpp"

namespace bgpintent::stream {

namespace {

[[nodiscard]] constexpr std::uint64_t pack_key(bgp::PathId path,
                                               Community community) noexcept {
  return static_cast<std::uint64_t>(path) << 32 | community.wire();
}

[[nodiscard]] constexpr bgp::PathId key_path(std::uint64_t key) noexcept {
  return static_cast<bgp::PathId>(key >> 32);
}

[[nodiscard]] constexpr Community key_community(std::uint64_t key) noexcept {
  return Community::from_wire(static_cast<std::uint32_t>(key));
}

}  // namespace

void WindowClassifier::advance_to(std::uint32_t timestamp) {
  latest_timestamp_ = std::max(latest_timestamp_, timestamp);
  const std::uint64_t epoch = timestamp / std::max<std::uint32_t>(
                                              config_.epoch_seconds, 1);
  if (!started_) {
    started_ = true;
    current_epoch_ = epoch;
    return;
  }
  if (epoch <= current_epoch_) return;  // late records fold into the newest
  current_epoch_ = epoch;
  const std::uint64_t window =
      std::max<std::uint32_t>(config_.window_epochs, 1);
  while (!ring_.empty() && ring_.front().id + window <= current_epoch_) {
    Epoch expired = std::move(ring_.front());
    ring_.pop_front();
    ++expired_epochs_;
    for (const auto& [key, count] : expired.tuples) {
      const auto ref = window_refs_.find(key);
      ref->second -= count;
      if (ref->second == 0) {
        window_refs_.erase(ref);
        deactivate_tuple(key);
      }
    }
  }
}

WindowClassifier::Epoch& WindowClassifier::newest_epoch() {
  if (ring_.empty() || ring_.back().id != current_epoch_) {
    ring_.push_back(Epoch{current_epoch_, {}});
  }
  return ring_.back();
}

void WindowClassifier::announce(const bgp::RibEntry& entry,
                                std::uint32_t timestamp) {
  advance_to(timestamp);
  ++announces_;
  if (entry.route.communities.empty()) return;  // no tuples, no evidence

  const bgp::PathId path = paths_.intern(entry.route.path);
  Epoch& epoch = newest_epoch();
  for (const Community community : entry.route.communities) {
    const std::uint64_t key = pack_key(path, community);
    ++epoch.tuples[key];
    if (++window_refs_[key] == 1) activate_tuple(key);
  }
}

void WindowClassifier::withdraw(const bgp::VantagePointId& /*peer*/,
                                const bgp::Prefix& /*prefix*/,
                                std::uint32_t timestamp) {
  advance_to(timestamp);
  ++withdraws_;
}

void WindowClassifier::activate_tuple(std::uint64_t key) {
  const bgp::PathId path = key_path(key);
  const Community community = key_community(key);
  if (++path_refs_[path] == 1) path_became_live(path);

  AlphaCounts& counts = alphas_[community.alpha()];
  OnOff& on_off = counts.betas[community.beta()];
  if (on_path(path, community.alpha()))
    ++on_off.on;
  else
    ++on_off.off;
  dirty_.insert(community.alpha());
}

void WindowClassifier::deactivate_tuple(std::uint64_t key) {
  const bgp::PathId path = key_path(key);
  const Community community = key_community(key);

  const auto alpha_it = alphas_.find(community.alpha());
  AlphaCounts& counts = alpha_it->second;
  const auto beta_it = counts.betas.find(community.beta());
  if (on_path(path, community.alpha()))
    --beta_it->second.on;
  else
    --beta_it->second.off;
  if (beta_it->second.on == 0 && beta_it->second.off == 0)
    counts.betas.erase(beta_it);
  dirty_.insert(community.alpha());

  const auto path_ref = path_refs_.find(path);
  if (--path_ref->second == 0) {
    path_refs_.erase(path_ref);
    path_became_dead(path);
  }
}

void WindowClassifier::path_became_live(bgp::PathId path) {
  for (const bgp::Asn asn : paths_.unique_asns(path))
    if (++asn_refs_[asn] == 1) mark_exclusion_dirty(asn);
}

void WindowClassifier::path_became_dead(bgp::PathId path) {
  for (const bgp::Asn asn : paths_.unique_asns(path)) {
    const auto ref = asn_refs_.find(asn);
    if (--ref->second == 0) {
      asn_refs_.erase(ref);
      mark_exclusion_dirty(asn);
    }
  }
}

void WindowClassifier::mark_exclusion_dirty(bgp::Asn asn) {
  const auto mark = [this](bgp::Asn candidate) {
    if (candidate <= 0xffff &&
        alphas_.contains(static_cast<std::uint16_t>(candidate)))
      dirty_.insert(static_cast<std::uint16_t>(candidate));
  };
  mark(asn);
  if (config_.observation.sibling_aware && orgs_ != nullptr)
    for (const bgp::Asn sibling : orgs_->siblings(asn)) mark(sibling);
}

bool WindowClassifier::on_path(bgp::PathId path, std::uint16_t alpha) {
  const std::uint64_t memo_key =
      static_cast<std::uint64_t>(path) << 16 | alpha;
  const auto [memo, fresh] = on_path_memo_.try_emplace(memo_key, false);
  if (fresh) {
    bool on = paths_.contains(path, alpha);
    if (!on && config_.observation.sibling_aware && orgs_ != nullptr)
      for (const bgp::Asn sibling : orgs_->siblings(alpha))
        if (sibling != alpha && paths_.contains(path, sibling)) {
          on = true;
          break;
        }
    memo->second = on;
  }
  return memo->second;
}

bool WindowClassifier::alpha_on_any_path(std::uint16_t alpha) const {
  if (asn_refs_.contains(alpha)) return true;
  if (!config_.observation.sibling_aware || orgs_ == nullptr) return false;
  for (const bgp::Asn sibling : orgs_->siblings(alpha))
    if (asn_refs_.contains(sibling)) return true;
  return false;
}

void WindowClassifier::reclassify_alpha(std::uint16_t alpha,
                                        AlphaCounts& counts,
                                        std::vector<LabelChange>& out) {
  reclassified_communities_ += counts.betas.size();

  std::unordered_map<std::uint16_t, Intent> previous;
  previous.swap(counts.labels);

  if (bgp::is_public_asn16(alpha) && alpha_on_any_path(alpha)) {
    std::vector<core::BetaCounts> betas;
    betas.reserve(counts.betas.size());
    for (const auto& [beta, on_off] : counts.betas)
      betas.push_back({beta, on_off.on, on_off.off});
    std::sort(betas.begin(), betas.end(),
              [](const core::BetaCounts& a, const core::BetaCounts& b) {
                return a.beta < b.beta;
              });
    core::label_alpha_counts(alpha, betas, config_.classifier,
                             [&counts](std::uint16_t beta, Intent intent) {
                               counts.labels.emplace(beta, intent);
                             });
  }

  // Diff previous vs. current labels in ascending beta order.
  std::vector<std::uint16_t> betas;
  betas.reserve(previous.size() + counts.labels.size());
  for (const auto& [beta, intent] : previous) betas.push_back(beta);
  for (const auto& [beta, intent] : counts.labels) betas.push_back(beta);
  std::sort(betas.begin(), betas.end());
  betas.erase(std::unique(betas.begin(), betas.end()), betas.end());
  for (const std::uint16_t beta : betas) {
    const auto before = previous.find(beta);
    const auto after = counts.labels.find(beta);
    const Intent old_intent =
        before == previous.end() ? Intent::kUnclassified : before->second;
    const Intent new_intent =
        after == counts.labels.end() ? Intent::kUnclassified : after->second;
    if (old_intent != new_intent)
      out.push_back(LabelChange{Community(alpha, beta), old_intent,
                                new_intent, current_epoch_});
  }
}

std::vector<LabelChange> WindowClassifier::reclassify_dirty() {
  std::vector<LabelChange> changes;
  for (const std::uint16_t alpha : dirty_) {
    const auto it = alphas_.find(alpha);
    if (it == alphas_.end()) continue;
    if (it->second.betas.empty()) {
      // Every observation of this alpha expired: retire cached labels.
      AlphaCounts retired = std::move(it->second);
      alphas_.erase(it);
      std::vector<std::uint16_t> betas;
      betas.reserve(retired.labels.size());
      for (const auto& [beta, intent] : retired.labels) betas.push_back(beta);
      std::sort(betas.begin(), betas.end());
      for (const std::uint16_t beta : betas)
        changes.push_back(LabelChange{Community(alpha, beta),
                                      retired.labels.at(beta),
                                      Intent::kUnclassified, current_epoch_});
      continue;
    }
    reclassify_alpha(alpha, it->second, changes);
  }
  dirty_.clear();
  return changes;
}

void WindowClassifier::mark_all_dirty() {
  for (const auto& [alpha, counts] : alphas_) dirty_.insert(alpha);
}

Intent WindowClassifier::label_of(Community community) const noexcept {
  const auto it = alphas_.find(community.alpha());
  if (it == alphas_.end()) return Intent::kUnclassified;
  const auto label = it->second.labels.find(community.beta());
  return label == it->second.labels.end() ? Intent::kUnclassified
                                          : label->second;
}

WindowClassifier::Totals WindowClassifier::totals() const {
  Totals totals;
  for (const auto& [alpha, counts] : alphas_) {
    for (const auto& [beta, on_off] : counts.betas) {
      ++totals.communities;
      const auto label = counts.labels.find(beta);
      if (label == counts.labels.end()) {
        ++totals.unclassified;
      } else if (label->second == Intent::kInformation) {
        ++totals.information;
      } else {
        ++totals.action;
      }
    }
  }
  return totals;
}

std::vector<std::pair<Community, Intent>> WindowClassifier::labels() const {
  std::vector<std::pair<Community, Intent>> out;
  for (const auto& [alpha, counts] : alphas_)
    for (const auto& [beta, intent] : counts.labels)
      out.emplace_back(Community(alpha, beta), intent);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<bgp::InternedTuple> WindowClassifier::window_tuples() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(window_refs_.size());
  for (const auto& [key, count] : window_refs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::vector<bgp::InternedTuple> tuples;
  tuples.reserve(keys.size());
  for (const std::uint64_t key : keys)
    tuples.push_back(bgp::InternedTuple{key_path(key), key_community(key)});
  return tuples;
}

WindowState WindowClassifier::export_state() const {
  WindowState state;

  state.paths.reserve(paths_.size());
  for (bgp::PathId id = 0; id < paths_.size(); ++id)
    state.paths.push_back(paths_.materialize(id));

  state.ring.reserve(ring_.size());
  for (const Epoch& epoch : ring_) {
    WindowState::EpochState out;
    out.id = epoch.id;
    out.tuples.assign(epoch.tuples.begin(), epoch.tuples.end());
    std::sort(out.tuples.begin(), out.tuples.end());
    state.ring.push_back(std::move(out));
  }

  for (const auto& [alpha, counts] : alphas_) {
    if (counts.labels.empty()) continue;
    WindowState::AlphaLabels out;
    out.alpha = alpha;
    out.labels.assign(counts.labels.begin(), counts.labels.end());
    std::sort(out.labels.begin(), out.labels.end());
    state.alphas.push_back(std::move(out));
  }
  std::sort(state.alphas.begin(), state.alphas.end(),
            [](const WindowState::AlphaLabels& a,
               const WindowState::AlphaLabels& b) { return a.alpha < b.alpha; });

  state.dirty.assign(dirty_.begin(), dirty_.end());  // std::set: ascending

  state.started = started_;
  state.current_epoch = current_epoch_;
  state.latest_timestamp = latest_timestamp_;
  state.announces = announces_;
  state.withdraws = withdraws_;
  state.expired_epochs = expired_epochs_;
  state.reclassified_communities = reclassified_communities_;
  return state;
}

void WindowClassifier::restore_state(const WindowState& state) {
  paths_ = bgp::PathTable{};
  on_path_memo_.clear();
  ring_.clear();
  window_refs_.clear();
  path_refs_.clear();
  asn_refs_.clear();
  alphas_.clear();
  dirty_.clear();

  // PathIds are dense intern order, so re-interning the exported paths in
  // order reproduces every id the ring keys reference.
  for (const bgp::AsPath& path : state.paths) paths_.intern(path);

  for (const WindowState::EpochState& epoch : state.ring) {
    Epoch rebuilt;
    rebuilt.id = epoch.id;
    rebuilt.tuples.reserve(epoch.tuples.size());
    for (const auto& [key, count] : epoch.tuples) {
      if (key_path(key) >= paths_.size())
        throw std::runtime_error(
            "window state ring references an unknown path");
      rebuilt.tuples.emplace(key, count);
      window_refs_[key] += count;
    }
    ring_.push_back(std::move(rebuilt));
  }

  // activate_tuple per live key rebuilds path/asn refcounts and beta
  // counters; the final state is order-independent (pure increments).
  for (const auto& [key, count] : window_refs_) activate_tuple(key);

  // Classification history is carried verbatim, not derived: overwrite the
  // labels and the dirty set activate_tuple just polluted.
  dirty_.clear();
  dirty_.insert(state.dirty.begin(), state.dirty.end());
  for (const WindowState::AlphaLabels& alpha : state.alphas) {
    auto& labels = alphas_[alpha.alpha].labels;
    labels.clear();
    labels.insert(alpha.labels.begin(), alpha.labels.end());
  }

  started_ = state.started;
  current_epoch_ = state.current_epoch;
  latest_timestamp_ = state.latest_timestamp;
  announces_ = state.announces;
  withdraws_ = state.withdraws;
  expired_epochs_ = state.expired_epochs;
  reclassified_communities_ = state.reclassified_communities;
}

std::size_t WindowClassifier::memory_bytes() const noexcept {
  // Unordered-map nodes cost roughly key+value plus two pointers of
  // overhead; close enough for the trend line the bench charts.
  constexpr std::size_t kNode = 2 * sizeof(void*);
  std::size_t bytes = paths_.memory_bytes();
  bytes += on_path_memo_.size() * (kNode + sizeof(std::uint64_t) + 1);
  bytes += window_refs_.size() * (kNode + 12);
  bytes += path_refs_.size() * (kNode + 8);
  bytes += asn_refs_.size() * (kNode + 8);
  for (const Epoch& epoch : ring_)
    bytes += sizeof(Epoch) + epoch.tuples.size() * (kNode + 12);
  for (const auto& [alpha, counts] : alphas_) {
    bytes += kNode + sizeof(AlphaCounts);
    bytes += counts.betas.size() * (kNode + sizeof(OnOff) + 2);
    bytes += counts.labels.size() * (kNode + 3);
  }
  bytes += dirty_.size() * (4 * sizeof(void*));
  return bytes;
}

}  // namespace bgpintent::stream
