#include "stream/engine.hpp"

#include <algorithm>
#include <istream>

#include "stream/checkpoint.hpp"

namespace bgpintent::stream {

StreamEngine::~StreamEngine() = default;

/// UpdateSink bridge: locks per record batch-free (the mutex is
/// uncontended on the hot path); announce_locked/withdraw_locked journal,
/// apply, and run the batch-cadence reclassification tick.
class StreamEngine::IngestSink final : public mrt::UpdateSink {
 public:
  explicit IngestSink(StreamEngine& engine) noexcept : engine_(&engine) {}

  void on_announce(bgp::RibEntry& entry, std::uint32_t timestamp) override {
    std::lock_guard<std::mutex> lock(engine_->mutex_);
    engine_->announce_locked(entry, timestamp);
  }
  void on_withdraw(const bgp::VantagePointId& peer, const bgp::Prefix& prefix,
                   std::uint32_t timestamp) override {
    std::lock_guard<std::mutex> lock(engine_->mutex_);
    engine_->withdraw_locked(peer, prefix, timestamp);
  }

 private:
  StreamEngine* engine_;
};

void StreamEngine::ingest(const mrt::ByteSource& source,
                          const mrt::DecodeOptions& options,
                          mrt::DecodeReport* report) {
  IngestSink sink(*this);
  mrt::DecodeReport local;
  try {
    mrt::decode_update_stream(source, sink, options, &local);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    fold_decode_locked(local.records_ok, local.records_skipped);
    reclassify_locked();
    if (report) *report = std::move(local);
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  fold_decode_locked(local.records_ok, local.records_skipped);
  reclassify_locked();
  if (report) *report = std::move(local);
}

void StreamEngine::ingest(std::istream& in, const mrt::DecodeOptions& options,
                          mrt::DecodeReport* report) {
  IngestSink sink(*this);
  mrt::DecodeReport local;
  try {
    mrt::decode_update_stream(in, sink, options, &local);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    fold_decode_locked(local.records_ok, local.records_skipped);
    reclassify_locked();
    if (report) *report = std::move(local);
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  fold_decode_locked(local.records_ok, local.records_skipped);
  reclassify_locked();
  if (report) *report = std::move(local);
}

void StreamEngine::announce(const bgp::RibEntry& entry,
                            std::uint32_t timestamp) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t at =
      timestamp != 0 ? timestamp : window_.latest_timestamp();
  announce_locked(entry, at);
}

void StreamEngine::announce_locked(const bgp::RibEntry& entry,
                                   std::uint32_t timestamp) {
  // Write-ahead: the update hits the journal before any state it may
  // change becomes observable.
  if (journal_) {
    scratch_.clear();
    encode_announce_record(scratch_, entry.route.path,
                           entry.route.communities, timestamp);
    journal_->append(scratch_);
  }
  const bool started_before = window_.started();
  const std::uint64_t epoch_before = window_.current_epoch();
  window_.announce(entry, timestamp);
  if (journal_ &&
      (!started_before || window_.current_epoch() != epoch_before)) {
    scratch_.clear();
    encode_epoch_record(scratch_, window_.current_epoch());
    journal_->append(scratch_);
  }
  tick_locked();
  pending_dirty_.store(window_.dirty_alpha_count() > 0,
                       std::memory_order_release);
}

void StreamEngine::withdraw_locked(const bgp::VantagePointId& peer,
                                   const bgp::Prefix& prefix,
                                   std::uint32_t timestamp) {
  if (journal_) {
    scratch_.clear();
    encode_withdraw_record(scratch_, timestamp);
    journal_->append(scratch_);
  }
  const bool started_before = window_.started();
  const std::uint64_t epoch_before = window_.current_epoch();
  window_.withdraw(peer, prefix, timestamp);
  if (journal_ &&
      (!started_before || window_.current_epoch() != epoch_before)) {
    scratch_.clear();
    encode_epoch_record(scratch_, window_.current_epoch());
    journal_->append(scratch_);
  }
  tick_locked();
  pending_dirty_.store(window_.dirty_alpha_count() > 0,
                       std::memory_order_release);
}

void StreamEngine::tick_locked() {
  if (++updates_since_reclassify_ >= kReclassifyBatch) {
    updates_since_reclassify_ = 0;
    // force_marker: journal the pass even when nothing was dirty, so
    // replay resets its cadence counter at the same record boundary.
    reclassify_locked(/*force_marker=*/true);
  }
  if (journal_ != nullptr && checkpoint_interval_ != 0 &&
      ++updates_since_checkpoint_ >= checkpoint_interval_) {
    updates_since_checkpoint_ = 0;
    write_checkpoint_locked();
  }
}

void StreamEngine::fold_decode_locked(std::uint64_t records_ok,
                                      std::uint64_t records_skipped) {
  decode_ok_ += records_ok;
  decode_errors_ += records_skipped;
  if (journal_) {
    scratch_.clear();
    encode_decode_stats_record(scratch_, records_ok, records_skipped);
    journal_->append(scratch_);
  }
}

void StreamEngine::reclassify() {
  std::lock_guard<std::mutex> lock(mutex_);
  reclassify_locked();
}

void StreamEngine::reclassify_locked(bool force_marker) {
  // An empty dirty set means reclassify_dirty() would be a pure no-op;
  // skipping it keeps query paths (label_of, totals, snapshots) from
  // journaling a marker per call.
  const bool had_dirty = window_.dirty_alpha_count() > 0;
  if (!had_dirty && !force_marker) {
    pending_dirty_.store(false, std::memory_order_release);
    return;
  }
  std::vector<LabelChange> changes = window_.reclassify_dirty();
  pending_dirty_.store(false, std::memory_order_release);
  if (journal_) {
    const std::uint64_t first_seq = next_seq_;
    for (std::size_t i = 0; i < changes.size(); ++i) {
      scratch_.clear();
      encode_event_record(scratch_, first_seq + i, changes[i]);
      journal_->append(scratch_);
    }
    scratch_.clear();
    encode_reclassify_record(scratch_, first_seq, changes.size(),
                             updates_since_reclassify_);
    journal_->append(scratch_);
  }
  publish_locked(std::move(changes));
}

void StreamEngine::publish_locked(std::vector<LabelChange>&& changes) {
  const bool any = !changes.empty();
  for (LabelChange& change : changes) {
    events_.push_back(Event{next_seq_++, std::move(change)});
  }
  if (events_.size() > kMaxBufferedEvents) {
    events_.erase(events_.begin(),
                  events_.begin() +
                      static_cast<std::ptrdiff_t>(events_.size() -
                                                  kMaxBufferedEvents));
  }
  if (any) {
    published_seq_.store(next_seq_ - 1, std::memory_order_release);
    if (publish_hook_) publish_hook_();
  }
}

void StreamEngine::set_publish_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  publish_hook_ = std::move(hook);
}

Intent StreamEngine::label_of(Community community) {
  std::lock_guard<std::mutex> lock(mutex_);
  reclassify_locked();
  return window_.label_of(community);
}

WindowClassifier::Totals StreamEngine::totals() {
  std::lock_guard<std::mutex> lock(mutex_);
  reclassify_locked();
  return window_.totals();
}

EngineStats StreamEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats stats;
  stats.updates_ok = decode_ok_;
  stats.updates_errors = decode_errors_;
  stats.announces = window_.announces();
  stats.withdraws = window_.withdraws();
  stats.window_epochs = window_.window_epoch_count();
  stats.expired_epochs = window_.expired_epochs();
  stats.reclassified_communities = window_.reclassified_communities();
  stats.events = next_seq_ - 1;
  stats.live_tuples = window_.live_tuple_count();
  stats.dirty_alphas = window_.dirty_alpha_count();
  stats.current_epoch = window_.current_epoch();
  stats.latest_timestamp = window_.latest_timestamp();
  stats.window_memory_bytes = window_.memory_bytes();
  const JournalWriterStats& journal =
      journal_ ? journal_->stats() : detached_journal_stats_;
  stats.journal_appends = journal.appends;
  stats.journal_bytes = journal.bytes;
  stats.recovered_events = recovered_events_;
  stats.torn_tail_truncated = torn_tail_truncated_;
  return stats;
}

void StreamEngine::attach_journal(std::unique_ptr<JournalWriter> writer,
                                  std::uint64_t checkpoint_interval_updates) {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_ = std::move(writer);
  checkpoint_interval_ = checkpoint_interval_updates;
  updates_since_checkpoint_ = 0;
  if (journal_ && journal_->next_record() == 0) {
    scratch_.clear();
    encode_config_record(scratch_, window_.config());
    journal_->append(scratch_);
  }
}

void StreamEngine::detach_journal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!journal_) return;
  write_checkpoint_locked();  // clean shutdown: recovery replays nothing
  detached_journal_stats_ = journal_->stats();
  journal_->close();
  journal_.reset();
}

bool StreamEngine::has_journal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return journal_ != nullptr;
}

void StreamEngine::checkpoint_now() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (journal_) write_checkpoint_locked();
}

void StreamEngine::write_checkpoint_locked() {
  CheckpointData data;
  data.config = window_.config();
  data.state = export_state_locked();
  // Make the covered journal prefix durable before naming it in the
  // checkpoint, so a loadable checkpoint never claims records the journal
  // cannot serve.
  journal_->sync();
  save_checkpoint(journal_->config().directory, journal_->next_record(),
                  data);
}

EngineState StreamEngine::export_state_locked() const {
  EngineState state;
  state.window = window_.export_state();
  state.events = events_;
  state.next_seq = next_seq_;
  state.decode_ok = decode_ok_;
  state.decode_errors = decode_errors_;
  state.updates_since_reclassify = updates_since_reclassify_;
  return state;
}

EngineState StreamEngine::export_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return export_state_locked();
}

void StreamEngine::restore_state(const EngineState& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  window_.restore_state(state.window);
  events_ = state.events;
  next_seq_ = state.next_seq;
  decode_ok_ = state.decode_ok;
  decode_errors_ = state.decode_errors;
  updates_since_reclassify_ = state.updates_since_reclassify;
  published_seq_.store(next_seq_ - 1, std::memory_order_release);
  pending_dirty_.store(window_.dirty_alpha_count() > 0,
                       std::memory_order_release);
}

std::uint64_t StreamEngine::last_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - 1;
}

std::uint64_t StreamEngine::first_buffered_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty() ? 0 : events_.front().seq;
}

std::vector<Event> StreamEngine::events_since(std::uint64_t after,
                                              std::size_t limit,
                                              bool& gap) const {
  std::lock_guard<std::mutex> lock(mutex_);
  gap = !events_.empty() && after + 1 < events_.front().seq;
  std::vector<Event> out;
  const auto begin = std::upper_bound(
      events_.begin(), events_.end(), after,
      [](std::uint64_t seq, const Event& event) { return seq < event.seq; });
  for (auto it = begin; it != events_.end() && out.size() < limit; ++it)
    out.push_back(*it);
  return out;
}

std::vector<std::pair<Community, Intent>> StreamEngine::label_snapshot(
    std::uint64_t& as_of_seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  reclassify_locked();
  as_of_seq = next_seq_ - 1;
  return window_.labels();
}

}  // namespace bgpintent::stream
