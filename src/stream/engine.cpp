#include "stream/engine.hpp"

#include <algorithm>
#include <istream>

namespace bgpintent::stream {

/// UpdateSink bridge: locks per record batch-free (the mutex is
/// uncontended on the hot path) and triggers a reclassification pass every
/// kReclassifyBatch callbacks so events stream out mid-source.
class StreamEngine::IngestSink final : public mrt::UpdateSink {
 public:
  explicit IngestSink(StreamEngine& engine) noexcept : engine_(&engine) {}

  void on_announce(bgp::RibEntry& entry, std::uint32_t timestamp) override {
    std::lock_guard<std::mutex> lock(engine_->mutex_);
    engine_->window_.announce(entry, timestamp);
    tick();
  }
  void on_withdraw(const bgp::VantagePointId& peer, const bgp::Prefix& prefix,
                   std::uint32_t timestamp) override {
    std::lock_guard<std::mutex> lock(engine_->mutex_);
    engine_->window_.withdraw(peer, prefix, timestamp);
    tick();
  }

 private:
  void tick() {
    if (++since_reclassify_ >= kReclassifyBatch) {
      since_reclassify_ = 0;
      engine_->reclassify_locked();
    }
  }

  StreamEngine* engine_;
  std::uint64_t since_reclassify_ = 0;
};

void StreamEngine::ingest(const mrt::ByteSource& source,
                          const mrt::DecodeOptions& options,
                          mrt::DecodeReport* report) {
  IngestSink sink(*this);
  mrt::DecodeReport local;
  try {
    mrt::decode_update_stream(source, sink, options, &local);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    decode_ok_ += local.records_ok;
    decode_errors_ += local.records_skipped;
    reclassify_locked();
    if (report) *report = std::move(local);
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  decode_ok_ += local.records_ok;
  decode_errors_ += local.records_skipped;
  reclassify_locked();
  if (report) *report = std::move(local);
}

void StreamEngine::ingest(std::istream& in, const mrt::DecodeOptions& options,
                          mrt::DecodeReport* report) {
  IngestSink sink(*this);
  mrt::DecodeReport local;
  try {
    mrt::decode_update_stream(in, sink, options, &local);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    decode_ok_ += local.records_ok;
    decode_errors_ += local.records_skipped;
    reclassify_locked();
    if (report) *report = std::move(local);
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  decode_ok_ += local.records_ok;
  decode_errors_ += local.records_skipped;
  reclassify_locked();
  if (report) *report = std::move(local);
}

void StreamEngine::announce(const bgp::RibEntry& entry,
                            std::uint32_t timestamp) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t at =
      timestamp != 0 ? timestamp : window_.latest_timestamp();
  window_.announce(entry, at);
}

void StreamEngine::reclassify() {
  std::lock_guard<std::mutex> lock(mutex_);
  reclassify_locked();
}

void StreamEngine::reclassify_locked() {
  publish_locked(window_.reclassify_dirty());
}

void StreamEngine::publish_locked(std::vector<LabelChange>&& changes) {
  for (LabelChange& change : changes) {
    events_.push_back(Event{next_seq_++, std::move(change)});
  }
  if (events_.size() > kMaxBufferedEvents) {
    events_.erase(events_.begin(),
                  events_.begin() +
                      static_cast<std::ptrdiff_t>(events_.size() -
                                                  kMaxBufferedEvents));
  }
}

Intent StreamEngine::label_of(Community community) {
  std::lock_guard<std::mutex> lock(mutex_);
  reclassify_locked();
  return window_.label_of(community);
}

WindowClassifier::Totals StreamEngine::totals() {
  std::lock_guard<std::mutex> lock(mutex_);
  reclassify_locked();
  return window_.totals();
}

EngineStats StreamEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats stats;
  stats.updates_ok = decode_ok_;
  stats.updates_errors = decode_errors_;
  stats.announces = window_.announces();
  stats.withdraws = window_.withdraws();
  stats.window_epochs = window_.window_epoch_count();
  stats.expired_epochs = window_.expired_epochs();
  stats.reclassified_communities = window_.reclassified_communities();
  stats.events = next_seq_ - 1;
  stats.live_tuples = window_.live_tuple_count();
  stats.dirty_alphas = window_.dirty_alpha_count();
  stats.current_epoch = window_.current_epoch();
  stats.latest_timestamp = window_.latest_timestamp();
  stats.window_memory_bytes = window_.memory_bytes();
  return stats;
}

std::uint64_t StreamEngine::last_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - 1;
}

std::uint64_t StreamEngine::first_buffered_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty() ? 0 : events_.front().seq;
}

std::vector<Event> StreamEngine::events_since(std::uint64_t after,
                                              std::size_t limit,
                                              bool& gap) const {
  std::lock_guard<std::mutex> lock(mutex_);
  gap = !events_.empty() && after + 1 < events_.front().seq;
  std::vector<Event> out;
  const auto begin = std::upper_bound(
      events_.begin(), events_.end(), after,
      [](std::uint64_t seq, const Event& event) { return seq < event.seq; });
  for (auto it = begin; it != events_.end() && out.size() < limit; ++it)
    out.push_back(*it);
  return out;
}

std::vector<std::pair<Community, Intent>> StreamEngine::label_snapshot(
    std::uint64_t& as_of_seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  reclassify_locked();
  as_of_seq = next_seq_ - 1;
  return window_.labels();
}

}  // namespace bgpintent::stream
