// Sliding-window intent classification over a live update stream.
//
// The batch pipeline classifies one frozen tuple set; a firehose consumer
// wants the labels "as of the trailing week".  WindowClassifier keeps a
// ring of per-epoch tuple deltas over one bgp::PathTable: every announced
// (path, community) observation lands in the epoch of its collector
// timestamp, epochs older than the window are popped whole, and all
// classifier-facing state — per-community on/off unique-path counts, the
// ASN-on-path universe, the alpha dirty set — is maintained by refcounts
// on the 0<->1 transitions of those deltas.  Reclassification runs only
// over dirty alphas (communities whose cluster counts changed, or whose
// never-on-path exclusion flipped), through the same
// core::label_alpha_counts unit the batch classifier uses.
//
// The invariant the property suite enforces (tests/property/
// stream_window_test.cpp): at any point, labels() is bit-identical to a
// from-scratch ObservationIndex::build_interned + core::classify over
// window_tuples() — including across epoch expiry and at any pool size.
//
// Design decisions (docs/STREAMING.md):
//   * Withdrawals advance the window clock and are counted, but do not
//     remove observations: the paper's evidence is "this (path, community)
//     pair was observed", and observations age out of the window by time,
//     exactly like tuples age out of a batch re-ingest of the last week.
//   * Late records (timestamp behind the newest epoch) fold into the
//     newest epoch instead of resurrecting an older one, so the window
//     never moves backward and expiry stays monotone.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "bgp/path_table.hpp"
#include "bgp/route.hpp"
#include "core/classifier.hpp"
#include "core/observations.hpp"
#include "topo/org_map.hpp"

namespace bgpintent::stream {

using core::Community;
using core::Intent;

struct WindowConfig {
  /// Width of one expiry bucket, in stream (collector-timestamp) seconds.
  std::uint32_t epoch_seconds = 3600;
  /// Epochs retained; 168 hourly epochs = the paper-shaped one-week window.
  std::uint32_t window_epochs = 168;
  core::ClassifierConfig classifier;
  core::ObservationConfig observation;
};

/// One label transition, emitted by reclassify_dirty().  `previous` is
/// kUnclassified for a community's first label and `current` is
/// kUnclassified when expiry (or a flipped exclusion) removed the label.
struct LabelChange {
  Community community;
  Intent previous = Intent::kUnclassified;
  Intent current = Intent::kUnclassified;
  std::uint64_t epoch = 0;  ///< window epoch at which the change surfaced

  friend bool operator==(const LabelChange&, const LabelChange&) = default;
};

/// The canonical (sorted, deduplicated) image of a WindowClassifier, for
/// checkpoints and crash-recovery equality checks.  Everything derivable
/// from the ring — refcounts, beta counters, the on-path memo — is omitted
/// and rebuilt by restore_state(); labels and the dirty set are carried
/// verbatim because they encode classification history, not evidence.
/// Two observationally identical windows export equal states regardless of
/// ingest interleaving or whether they were themselves restored.
struct WindowState {
  struct EpochState {
    std::uint64_t id = 0;
    /// (path << 32 | community wire) -> occurrences, ascending by key.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> tuples;

    friend bool operator==(const EpochState&, const EpochState&) = default;
  };
  struct AlphaLabels {
    std::uint16_t alpha = 0;
    /// Cached labels, ascending by beta; never empty (alphas without
    /// cached labels are fully derivable and therefore not exported).
    std::vector<std::pair<std::uint16_t, Intent>> labels;

    friend bool operator==(const AlphaLabels&, const AlphaLabels&) = default;
  };

  /// Every interned path in PathId order (ids are dense, so index == id).
  std::vector<bgp::AsPath> paths;
  std::vector<EpochState> ring;  ///< oldest epoch first
  std::vector<AlphaLabels> alphas;  ///< ascending by alpha
  std::vector<std::uint16_t> dirty;  ///< ascending

  bool started = false;
  std::uint64_t current_epoch = 0;
  std::uint32_t latest_timestamp = 0;
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  std::uint64_t expired_epochs = 0;
  std::uint64_t reclassified_communities = 0;

  friend bool operator==(const WindowState&, const WindowState&) = default;
};

class WindowClassifier {
 public:
  explicit WindowClassifier(WindowConfig config = {},
                            const topo::OrgMap* orgs = nullptr)
      : config_(config), orgs_(orgs) {}

  [[nodiscard]] const WindowConfig& config() const noexcept { return config_; }

  /// Ingests one announcement observed at `timestamp`.  Advances the
  /// window (possibly expiring epochs), interns the path, and refcounts
  /// one observation per carried community into the newest epoch.
  void announce(const bgp::RibEntry& entry, std::uint32_t timestamp);

  /// Ingests one withdrawal: advances the window clock and the counters
  /// only (see the file comment for why evidence is not removed).
  void withdraw(const bgp::VantagePointId& peer, const bgp::Prefix& prefix,
                std::uint32_t timestamp);

  /// Reclassifies every dirty alpha (ascending) and returns the label
  /// transitions in (alpha, beta) order — deterministic for a given
  /// evidence state regardless of ingest interleaving.
  [[nodiscard]] std::vector<LabelChange> reclassify_dirty();

  /// Marks every observed alpha dirty, so the next reclassify_dirty()
  /// relabels the whole window — the "full reclassify per epoch" baseline
  /// bench/stream_throughput measures the dirty tracking against.
  void mark_all_dirty();

  /// Cached label; callers reclassify first (label_of never mutates).
  [[nodiscard]] Intent label_of(Community community) const noexcept;

  /// Cached per-window counters; callers reclassify first.
  struct Totals {
    std::size_t communities = 0;
    std::size_t information = 0;
    std::size_t action = 0;
    std::size_t unclassified = 0;
  };
  [[nodiscard]] Totals totals() const;

  /// All cached labels, ascending by community; callers reclassify first.
  [[nodiscard]] std::vector<std::pair<Community, Intent>> labels() const;

  // --- The window-vs-batch bridge (property tests, docs/STREAMING.md) ---

  /// Live window contents as deduplicated interned tuples, ascending by
  /// (path, community) — the exact input a from-scratch batch build over
  /// this window consumes.
  [[nodiscard]] std::vector<bgp::InternedTuple> window_tuples() const;

  /// The shared path table window_tuples() ids point into.  Append-only:
  /// expired paths keep their ids (a PathId is never reused), they just
  /// stop being referenced by live tuples.
  [[nodiscard]] const bgp::PathTable& paths() const noexcept { return paths_; }

  // --- Persistence (stream/checkpoint.hpp, docs/STREAMING.md §6) ---

  /// Canonical image of this window.  Pure; safe to call at any point.
  [[nodiscard]] WindowState export_state() const;

  /// Replaces this window's contents with `state`, rebuilding every
  /// derived structure (refcounts, beta counters, path table) from the
  /// ring.  The classifier must have been constructed with the same
  /// WindowConfig and OrgMap the state was exported under — neither is
  /// part of the state.  Throws std::runtime_error on internally
  /// inconsistent state (a ring tuple naming an unknown path).
  void restore_state(const WindowState& state);

  // --- Introspection / counters ---

  /// False until the first announce/withdraw seeds the window clock.
  [[nodiscard]] bool started() const noexcept { return started_; }

  [[nodiscard]] std::uint64_t announces() const noexcept { return announces_; }
  [[nodiscard]] std::uint64_t withdraws() const noexcept { return withdraws_; }
  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    return current_epoch_;
  }
  [[nodiscard]] std::uint32_t latest_timestamp() const noexcept {
    return latest_timestamp_;
  }
  /// Non-empty epochs currently retained in the ring.
  [[nodiscard]] std::size_t window_epoch_count() const noexcept {
    return ring_.size();
  }
  [[nodiscard]] std::uint64_t expired_epochs() const noexcept {
    return expired_epochs_;
  }
  /// Live deduplicated (path, community) observations.
  [[nodiscard]] std::size_t live_tuple_count() const noexcept {
    return window_refs_.size();
  }
  [[nodiscard]] std::size_t dirty_alpha_count() const noexcept {
    return dirty_.size();
  }
  /// Communities whose counts were re-examined by reclassify_dirty() so
  /// far (the work-done counter the serve STATS surface reports).
  [[nodiscard]] std::uint64_t reclassified_communities() const noexcept {
    return reclassified_communities_;
  }

  /// Approximate bytes held by the window: path arenas plus every
  /// refcount/accumulator table (capacity-based, like
  /// PathTable::memory_bytes).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  struct OnOff {
    std::uint32_t on = 0;
    std::uint32_t off = 0;
  };
  struct AlphaCounts {
    std::unordered_map<std::uint16_t, OnOff> betas;
    std::unordered_map<std::uint16_t, Intent> labels;
  };
  struct Epoch {
    std::uint64_t id = 0;
    /// packed (path << 32 | community wire) -> occurrences in this epoch
    std::unordered_map<std::uint64_t, std::uint32_t> tuples;
  };

  /// Moves the window clock to `timestamp`'s epoch, expiring old epochs.
  void advance_to(std::uint32_t timestamp);
  /// The newest epoch bucket, creating it for current_epoch_ on demand.
  [[nodiscard]] Epoch& newest_epoch();

  /// 0->1 / 1->0 transition handlers for one (path, community) key.
  void activate_tuple(std::uint64_t key);
  void deactivate_tuple(std::uint64_t key);
  /// Path liveness transitions drive the ASN-on-path universe.
  void path_became_live(bgp::PathId path);
  void path_became_dead(bgp::PathId path);
  /// An ASN entered/left the on-path universe: the alphas whose exclusion
  /// that may flip (the ASN itself and its org siblings) go dirty.
  void mark_exclusion_dirty(bgp::Asn asn);

  /// Memoized "alpha (or an org sibling) is on path" — a pure function of
  /// path content, the org map, and the sibling config, so entries stay
  /// valid across expiry.
  [[nodiscard]] bool on_path(bgp::PathId path, std::uint16_t alpha);
  [[nodiscard]] bool alpha_on_any_path(std::uint16_t alpha) const;

  /// Relabels one alpha into `counts.labels`, appending transitions.
  void reclassify_alpha(std::uint16_t alpha, AlphaCounts& counts,
                        std::vector<LabelChange>& out);

  WindowConfig config_;
  const topo::OrgMap* orgs_ = nullptr;

  bgp::PathTable paths_;
  std::unordered_map<std::uint64_t, bool> on_path_memo_;

  std::deque<Epoch> ring_;
  std::unordered_map<std::uint64_t, std::uint32_t> window_refs_;
  std::unordered_map<bgp::PathId, std::uint32_t> path_refs_;
  std::unordered_map<bgp::Asn, std::uint32_t> asn_refs_;
  std::unordered_map<std::uint16_t, AlphaCounts> alphas_;
  // Ordered so reclassify_dirty walks alphas ascending without a sort.
  std::set<std::uint16_t> dirty_;

  bool started_ = false;
  std::uint64_t current_epoch_ = 0;
  std::uint32_t latest_timestamp_ = 0;
  std::uint64_t announces_ = 0;
  std::uint64_t withdraws_ = 0;
  std::uint64_t expired_epochs_ = 0;
  std::uint64_t reclassified_communities_ = 0;
};

}  // namespace bgpintent::stream
