// Thread-safe facade over WindowClassifier: the object the serve tier and
// the `bgpintent stream` CLI share.
//
// One mutex guards the window; decode loops ingest through the UpdateSink
// bridge and trigger a reclassification pass every kReclassifyBatch
// updates (and at end of source), so label-change events flow out while a
// long stream is still being consumed instead of all at once at EOF.
//
// Label changes append to a bounded in-memory event log with a monotonic
// sequence number.  Subscribers resume with events_since(seq): when the
// requested suffix is still buffered they get the delta, when it has been
// trimmed they take a fresh full snapshot (label_snapshot) and resubscribe
// from its sequence point — the delta-snapshot protocol documented in
// docs/STREAMING.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "mrt/update_stream.hpp"
#include "stream/window.hpp"

namespace bgpintent::stream {

/// One sequenced label-change event.
struct Event {
  std::uint64_t seq = 0;
  LabelChange change;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Counter snapshot surfaced by serve STATS (docs/STREAMING.md).
struct EngineStats {
  std::uint64_t updates_ok = 0;      ///< MRT records decoded cleanly
  std::uint64_t updates_errors = 0;  ///< records skipped by tolerant decode
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  std::uint64_t window_epochs = 0;   ///< non-empty epochs retained
  std::uint64_t expired_epochs = 0;
  std::uint64_t reclassified_communities = 0;
  std::uint64_t events = 0;          ///< label changes emitted so far
  std::uint64_t live_tuples = 0;
  std::uint64_t dirty_alphas = 0;    ///< alphas awaiting reclassification
  std::uint64_t current_epoch = 0;
  std::uint32_t latest_timestamp = 0;
  std::size_t window_memory_bytes = 0;
};

class StreamEngine {
 public:
  /// Events retained for delta resumption; older ones are trimmed and
  /// resuming subscribers fall back to a full snapshot.
  static constexpr std::size_t kMaxBufferedEvents = 65536;
  /// Updates between mid-stream reclassification passes.
  static constexpr std::uint64_t kReclassifyBatch = 4096;

  explicit StreamEngine(WindowConfig config = {},
                        const topo::OrgMap* orgs = nullptr)
      : window_(config, orgs) {}

  /// Decodes one update source into the window (strict or tolerant, same
  /// semantics as mrt::decode_update_stream), reclassifying every
  /// kReclassifyBatch updates and once at end.  Decode counters fold into
  /// the engine stats — also on throw.  Thread-safe; concurrent queries
  /// interleave between records.
  void ingest(const mrt::ByteSource& source,
              const mrt::DecodeOptions& options = {},
              mrt::DecodeReport* report = nullptr);
  void ingest(std::istream& in, const mrt::DecodeOptions& options = {},
              mrt::DecodeReport* report = nullptr);

  /// Ingests one announcement directly (the serve INGEST verb).  When
  /// `timestamp` is zero the window's latest stream timestamp is reused,
  /// so protocol-driven entries never move the window backward.
  void announce(const bgp::RibEntry& entry, std::uint32_t timestamp = 0);

  /// Reclassifies dirty alphas now, publishing any label changes.
  void reclassify();

  /// Label after reclassifying pending dirty state.
  [[nodiscard]] Intent label_of(Community community);

  [[nodiscard]] WindowClassifier::Totals totals();

  [[nodiscard]] EngineStats stats() const;

  /// Sequence number of the newest published event (0 = none yet).
  [[nodiscard]] std::uint64_t last_seq() const;

  /// Oldest sequence number still buffered (0 when the log is empty).
  [[nodiscard]] std::uint64_t first_buffered_seq() const;

  /// Buffered events with seq > `after`, oldest first, at most `limit`.
  /// Sets `gap` when `after` precedes the buffered range — the caller
  /// must take a full snapshot instead of trusting the delta.
  [[nodiscard]] std::vector<Event> events_since(std::uint64_t after,
                                                std::size_t limit,
                                                bool& gap) const;

  /// Full label snapshot (reclassifies first) plus the sequence number it
  /// is consistent with: events with seq > that are not yet reflected.
  [[nodiscard]] std::vector<std::pair<Community, Intent>> label_snapshot(
      std::uint64_t& as_of_seq);

 private:
  class IngestSink;

  /// Callers hold mutex_.
  void reclassify_locked();
  void publish_locked(std::vector<LabelChange>&& changes);

  mutable std::mutex mutex_;
  WindowClassifier window_;
  std::vector<Event> events_;   // trimmed front at kMaxBufferedEvents
  std::uint64_t next_seq_ = 1;
  std::uint64_t decode_ok_ = 0;
  std::uint64_t decode_errors_ = 0;
};

}  // namespace bgpintent::stream
