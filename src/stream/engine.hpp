// Thread-safe facade over WindowClassifier: the object the serve tier and
// the `bgpintent stream` CLI share.
//
// One mutex guards the window; decode loops ingest through the UpdateSink
// bridge and trigger a reclassification pass every kReclassifyBatch
// updates (and at end of source), so label-change events flow out while a
// long stream is still being consumed instead of all at once at EOF.
//
// Label changes append to a bounded in-memory event log with a monotonic
// sequence number.  Subscribers resume with events_since(seq): when the
// requested suffix is still buffered they get the delta, when it has been
// trimmed they take a fresh full snapshot (label_snapshot) and resubscribe
// from its sequence point — the delta-snapshot protocol documented in
// docs/STREAMING.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "mrt/update_stream.hpp"
#include "stream/journal.hpp"
#include "stream/window.hpp"

namespace bgpintent::stream {

/// One sequenced label-change event.
struct Event {
  std::uint64_t seq = 0;
  LabelChange change;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Counter snapshot surfaced by serve STATS (docs/STREAMING.md).
struct EngineStats {
  std::uint64_t updates_ok = 0;      ///< MRT records decoded cleanly
  std::uint64_t updates_errors = 0;  ///< records skipped by tolerant decode
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  std::uint64_t window_epochs = 0;   ///< non-empty epochs retained
  std::uint64_t expired_epochs = 0;
  std::uint64_t reclassified_communities = 0;
  std::uint64_t events = 0;          ///< label changes emitted so far
  std::uint64_t live_tuples = 0;
  std::uint64_t dirty_alphas = 0;    ///< alphas awaiting reclassification
  std::uint64_t current_epoch = 0;
  std::uint32_t latest_timestamp = 0;
  std::size_t window_memory_bytes = 0;
  // Durability counters (zero on a journal-less engine).
  std::uint64_t journal_appends = 0;  ///< records appended this process
  std::uint64_t journal_bytes = 0;    ///< journal bytes written this process
  std::uint64_t recovered_events = 0; ///< events restored by crash recovery
  std::uint64_t torn_tail_truncated = 0;  ///< torn frames/segments dropped
};

/// The canonical image of a StreamEngine — window state plus the event log
/// and the replay-cadence counters — for checkpoints and the crash-recovery
/// equality harness.  A recovered engine exports a state equal to the
/// uninterrupted run's.
struct EngineState {
  WindowState window;
  std::vector<Event> events;  ///< buffered tail, oldest first
  std::uint64_t next_seq = 1;
  std::uint64_t decode_ok = 0;
  std::uint64_t decode_errors = 0;
  /// Updates applied since the last batch-cadence reclassification pass.
  std::uint64_t updates_since_reclassify = 0;

  friend bool operator==(const EngineState&, const EngineState&) = default;
};

class StreamEngine {
 public:
  /// Events retained for delta resumption; older ones are trimmed and
  /// resuming subscribers fall back to a full snapshot.
  static constexpr std::size_t kMaxBufferedEvents = 65536;
  /// Updates between mid-stream reclassification passes.
  static constexpr std::uint64_t kReclassifyBatch = 4096;

  explicit StreamEngine(WindowConfig config = {},
                        const topo::OrgMap* orgs = nullptr)
      : window_(config, orgs) {}
  ~StreamEngine();

  // --- Durability (stream/journal.hpp, stream/recovery.hpp) ---

  /// Attaches a write-ahead journal: every applied update, epoch advance,
  /// label-change event, and reclassification pass is appended before the
  /// events become visible to subscribers.  A fresh journal (next_record
  /// == 0) gets the WindowConfig as record 0.  When
  /// `checkpoint_interval_updates` is nonzero, a checkpoint is written
  /// into the journal directory every that-many applied updates.
  void attach_journal(std::unique_ptr<JournalWriter> writer,
                      std::uint64_t checkpoint_interval_updates = 0);

  /// Writes a final checkpoint, seals the active segment, and drops the
  /// writer (its counters stay visible in stats()).  Clean-shutdown path;
  /// throws JournalError on IO failure.  No-op without a journal.
  void detach_journal();

  [[nodiscard]] bool has_journal() const;

  /// Writes a checkpoint now regardless of the interval pacing.  No-op
  /// without a journal.
  void checkpoint_now();

  /// Canonical image of the engine (window + event log + cadence).
  [[nodiscard]] EngineState export_state() const;

  /// Replaces the engine's contents with `state`.  The engine must have
  /// been constructed with the WindowConfig/OrgMap the state was exported
  /// under; any attached journal is unaffected (recovery attaches the
  /// journal after restoring).
  void restore_state(const EngineState& state);

  /// Decodes one update source into the window (strict or tolerant, same
  /// semantics as mrt::decode_update_stream), reclassifying every
  /// kReclassifyBatch updates and once at end.  Decode counters fold into
  /// the engine stats — also on throw.  Thread-safe; concurrent queries
  /// interleave between records.
  void ingest(const mrt::ByteSource& source,
              const mrt::DecodeOptions& options = {},
              mrt::DecodeReport* report = nullptr);
  void ingest(std::istream& in, const mrt::DecodeOptions& options = {},
              mrt::DecodeReport* report = nullptr);

  /// Ingests one announcement directly (the serve INGEST verb).  When
  /// `timestamp` is zero the window's latest stream timestamp is reused,
  /// so protocol-driven entries never move the window backward.
  void announce(const bgp::RibEntry& entry, std::uint32_t timestamp = 0);

  /// Reclassifies dirty alphas now, publishing any label changes.
  void reclassify();

  /// Label after reclassifying pending dirty state.
  [[nodiscard]] Intent label_of(Community community);

  [[nodiscard]] WindowClassifier::Totals totals();

  [[nodiscard]] EngineStats stats() const;

  /// Sequence number of the newest published event (0 = none yet).
  [[nodiscard]] std::uint64_t last_seq() const;

  /// Oldest sequence number still buffered (0 when the log is empty).
  [[nodiscard]] std::uint64_t first_buffered_seq() const;

  /// Buffered events with seq > `after`, oldest first, at most `limit`.
  /// Sets `gap` when `after` precedes the buffered range — the caller
  /// must take a full snapshot instead of trusting the delta.
  [[nodiscard]] std::vector<Event> events_since(std::uint64_t after,
                                                std::size_t limit,
                                                bool& gap) const;

  /// Full label snapshot (reclassifies first) plus the sequence number it
  /// is consistent with: events with seq > that are not yet reflected.
  [[nodiscard]] std::vector<std::pair<Community, Intent>> label_snapshot(
      std::uint64_t& as_of_seq);

  // --- Lock-free serve-tier signals -------------------------------------
  // The epoll shards poll these without touching mutex_: a warm LABEL
  // query compares its RCU snapshot's as_of_seq against published_seq()
  // and only falls into the locked path when the snapshot is stale or
  // unsettled dirty state could change the answer.

  /// Sequence of the newest published event; updated under mutex_ but
  /// readable without it.
  [[nodiscard]] std::uint64_t published_seq() const noexcept {
    return published_seq_.load(std::memory_order_acquire);
  }

  /// True while the window holds dirty alphas whose reclassification has
  /// not run yet (their labels may change at the next pass).
  [[nodiscard]] bool has_pending_dirty() const noexcept {
    return pending_dirty_.load(std::memory_order_acquire);
  }

  /// Callback invoked (under the engine mutex — keep it tiny and
  /// non-reentrant, e.g. an eventfd write) every time new events publish.
  /// The serve tier uses it to wake its shards for subscriber push and
  /// label-epoch refresh instead of polling.  Pass nullptr to clear.
  void set_publish_hook(std::function<void()> hook);

 private:
  class IngestSink;
  /// Replay (stream/recovery.cpp) applies journal records through the
  /// engine's internals without re-journaling them.
  friend class JournalReplayer;

  /// Callers hold mutex_.
  void announce_locked(const bgp::RibEntry& entry, std::uint32_t timestamp);
  void withdraw_locked(const bgp::VantagePointId& peer,
                       const bgp::Prefix& prefix, std::uint32_t timestamp);
  /// Post-update bookkeeping: batch-cadence reclassification and
  /// checkpoint pacing.
  void tick_locked();
  /// Runs a reclassification pass when there is dirty state (or
  /// `force_marker`, which journals a pass marker even for an empty pass —
  /// the batch cadence does this so replay keeps identical boundaries).
  void reclassify_locked(bool force_marker = false);
  void publish_locked(std::vector<LabelChange>&& changes);
  void fold_decode_locked(std::uint64_t records_ok,
                          std::uint64_t records_skipped);
  void write_checkpoint_locked();
  [[nodiscard]] EngineState export_state_locked() const;

  mutable std::mutex mutex_;
  WindowClassifier window_;
  std::vector<Event> events_;   // trimmed front at kMaxBufferedEvents
  std::uint64_t next_seq_ = 1;
  std::uint64_t decode_ok_ = 0;
  std::uint64_t decode_errors_ = 0;
  /// Engine-level batch cadence (journaled so replay reproduces it); never
  /// exceeds kReclassifyBatch outside replay.
  std::uint64_t updates_since_reclassify_ = 0;
  /// Mirrors of next_seq_ - 1 and the window's dirty set, maintained under
  /// mutex_ for lock-free reading by the serve shards (see published_seq).
  std::atomic<std::uint64_t> published_seq_{0};
  std::atomic<bool> pending_dirty_{false};
  std::function<void()> publish_hook_;

  std::unique_ptr<JournalWriter> journal_;
  std::vector<std::uint8_t> scratch_;  // record encode buffer
  std::uint64_t checkpoint_interval_ = 0;  // updates; 0 = disabled
  std::uint64_t updates_since_checkpoint_ = 0;
  JournalWriterStats detached_journal_stats_;  // survives detach_journal()
  std::uint64_t recovered_events_ = 0;
  std::uint64_t torn_tail_truncated_ = 0;
};

}  // namespace bgpintent::stream
