// Periodic engine checkpoints inside a journal directory, so recovery is
// checkpoint-load plus bounded tail replay instead of full-journal replay.
//
// A checkpoint file checkpoint-<records>.ckpt captures the engine state
// after exactly <records> journal records were applied; recovery picks the
// newest checkpoint whose record count is covered by the valid journal
// prefix and replays only the records past it.  Files are written with the
// snapshot v2 atomic discipline (tmp + fsync + rename) and carry the same
// header shape: magic, version, FNV-1a-64 payload checksum, payload size.
//
//   offset  size  field
//   0       8     magic "BGPIJCKP"
//   8       4     format version (u32, currently 1)
//   12      8     FNV-1a-64 of the payload bytes (u64)
//   20      8     payload size in bytes (u64)
//   28      ...   payload (WindowConfig + EngineState, little-endian)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "stream/engine.hpp"

namespace bgpintent::stream {

/// The checkpoint format version this build writes; readers accept
/// exactly this version.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Bytes of a checkpoint header (magic + version + checksum + size).
inline constexpr std::size_t kCheckpointHeaderBytes = 28;

struct CheckpointData {
  /// The WindowConfig the state was captured under — restoring into an
  /// engine with a different config would silently reclassify differently,
  /// so recovery verifies it (and it wins over CLI flags, like the serve
  /// snapshot config does).
  WindowConfig config;
  EngineState state;
};

/// Encodes / decodes the checkpoint payload (header excluded).
/// decode_checkpoint_payload throws JournalError on malformed input.
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint_payload(
    const CheckpointData& data);
[[nodiscard]] CheckpointData decode_checkpoint_payload(
    std::span<const std::uint8_t> payload);

/// "checkpoint-<records>.ckpt" (zero-padded so lexicographic order is
/// record order) under `directory`.
[[nodiscard]] std::string checkpoint_file_name(std::uint64_t records);
[[nodiscard]] std::string checkpoint_path(const std::string& directory,
                                          std::uint64_t records);

/// Atomically writes checkpoint-<records>.ckpt into `directory` (tmp +
/// fsync + rename).  Throws JournalError on IO failure.
void save_checkpoint(const std::string& directory, std::uint64_t records,
                     const CheckpointData& data);

/// Loads and verifies one checkpoint file.  Throws JournalError on IO
/// failure, bad magic/version, checksum mismatch, or malformed payload.
[[nodiscard]] CheckpointData load_checkpoint(const std::string& path);

/// Every checkpoint-*.ckpt of `directory` as (records covered, path),
/// ascending.  Missing directories list as empty.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
list_checkpoints(const std::string& directory);

}  // namespace bgpintent::stream
