// Synthetic BGP4MP update streams from simulator churn.
//
// The streaming mode needs realistic update traffic without real
// telemetry: generate_update_stream replays a routing::Scenario's churn
// days as a BGP4MP firehose.  Epoch 0 announces the full base-day RIB at
// every vantage point (the "table transfer" a collector sees when a
// session comes up); each later epoch diffs day e-1 against day e per
// (vantage point, prefix) and emits announcements for new/changed routes
// and withdrawals for routes that disappeared — exactly the record mix
// `bgpintent stream`, the CI streaming smoke, and bench/stream_throughput
// consume.  Deterministic for a given config at any pool size (the
// propagation itself is pool-invariant, and the diff walks entries in
// their canonical order).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "routing/scenario.hpp"

namespace bgpintent::util {
class ThreadPool;
}

namespace bgpintent::stream {

struct SynthStreamConfig {
  routing::ScenarioConfig scenario;
  /// Epochs to emit; epoch e replays churn day e (epoch 0 = full table).
  std::uint32_t epochs = 4;
  /// Stream seconds per epoch; record timestamps spread inside each epoch.
  std::uint32_t epoch_seconds = 3600;
  /// Collector timestamp of the first record.
  std::uint32_t start_timestamp = 1000000000;
  /// Fraction of slots per churn epoch that flap (withdraw + re-announce),
  /// so streams carry the withdrawal records real collectors see even
  /// though scenario churn alone never retracts a prefix.  Seeded from the
  /// scenario workload seed — deterministic per config.
  double flap_fraction = 0.05;
};

struct SynthStreamStats {
  std::uint64_t records = 0;
  std::uint64_t announcements = 0;  ///< announced prefixes
  std::uint64_t withdrawals = 0;    ///< withdrawn prefixes
};

/// Writes the stream to `out`; returns what was emitted.
SynthStreamStats write_update_stream(std::ostream& out,
                                     const SynthStreamConfig& config,
                                     util::ThreadPool* pool = nullptr);

/// In-memory convenience for tests and benches.
struct SynthStream {
  std::vector<std::uint8_t> bytes;
  SynthStreamStats stats;
};
[[nodiscard]] SynthStream generate_update_stream(
    const SynthStreamConfig& config, util::ThreadPool* pool = nullptr);

}  // namespace bgpintent::stream
