// Little-endian byte-packing helpers shared by the journal record codec
// (journal.cpp) and the checkpoint codec (checkpoint.cpp).  Internal to
// src/stream — the public surfaces are journal.hpp and checkpoint.hpp.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "bgp/aspath.hpp"
#include "stream/journal.hpp"
#include "util/strings.hpp"

namespace bgpintent::stream::wire {

[[nodiscard]] inline std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

inline void put_double(std::vector<std::uint8_t>& out, double value) {
  put(out, std::bit_cast<std::uint64_t>(value));
}

/// Bounds-checked little-endian reader over one payload; throws
/// JournalError instead of reading past the end.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_unsigned_v<T>);
    if (bytes_.size() - offset_ < sizeof(T))
      throw JournalError("truncated journal payload");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      value |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
    offset_ += sizeof(T);
    return static_cast<T>(value);
  }

  [[nodiscard]] double get_double() {
    return std::bit_cast<double>(get<std::uint64_t>());
  }

  /// Reads a count about to drive `element_bytes`-sized reads; rejects
  /// counts the remaining payload cannot hold (fail fast on corruption
  /// instead of attempting a huge allocation).
  [[nodiscard]] std::size_t get_count(std::size_t element_bytes) {
    const std::uint64_t count = get<std::uint64_t>();
    if (element_bytes != 0 && count > remaining() / element_bytes)
      throw JournalError("journal count exceeds payload size");
    return static_cast<std::size_t>(count);
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }

  void expect_end(const char* what) {
    if (remaining() != 0)
      throw JournalError(
          util::format("%s has %zu trailing bytes", what, remaining()));
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// AS path as segments: count u32, then per segment type u8 + ASN count
/// u32 + ASNs u32 each.  Shared by kAnnounce records and checkpoints.
inline void put_aspath(std::vector<std::uint8_t>& out, const bgp::AsPath& path) {
  const auto& segments = path.segments();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(segments.size()));
  for (const bgp::PathSegment& segment : segments) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(segment.type));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(segment.asns.size()));
    for (const bgp::Asn asn : segment.asns) put<std::uint32_t>(out, asn);
  }
}

[[nodiscard]] inline bgp::AsPath get_aspath(Cursor& cursor) {
  const std::uint32_t segment_count = cursor.get<std::uint32_t>();
  std::vector<bgp::PathSegment> segments;
  segments.reserve(segment_count);
  for (std::uint32_t i = 0; i < segment_count; ++i) {
    bgp::PathSegment segment;
    const std::uint8_t type = cursor.get<std::uint8_t>();
    if (type != static_cast<std::uint8_t>(bgp::SegmentType::kSet) &&
        type != static_cast<std::uint8_t>(bgp::SegmentType::kSequence))
      throw JournalError(
          util::format("journal path segment type %u is invalid", type));
    segment.type = static_cast<bgp::SegmentType>(type);
    const std::uint32_t asn_count = cursor.get<std::uint32_t>();
    if (asn_count == 0 || asn_count > cursor.remaining() / sizeof(std::uint32_t))
      throw JournalError("journal path segment count exceeds payload");
    segment.asns.reserve(asn_count);
    for (std::uint32_t a = 0; a < asn_count; ++a)
      segment.asns.push_back(cursor.get<std::uint32_t>());
    segments.push_back(std::move(segment));
  }
  return bgp::AsPath(std::move(segments));
}

/// WindowConfig payload: window shape plus the classifier and observation
/// knobs replay needs to regenerate identical labels.
inline void put_window_config(std::vector<std::uint8_t>& out,
                              const WindowConfig& config) {
  put<std::uint32_t>(out, config.epoch_seconds);
  put<std::uint32_t>(out, config.window_epochs);
  put<std::uint32_t>(out, config.classifier.min_gap);
  put_double(out, config.classifier.ratio_threshold);
  put<std::uint8_t>(out, config.classifier.mean_of_ratios ? 1 : 0);
  put<std::uint8_t>(out, config.observation.sibling_aware ? 1 : 0);
}

[[nodiscard]] inline WindowConfig get_window_config(Cursor& cursor) {
  WindowConfig config;
  config.epoch_seconds = cursor.get<std::uint32_t>();
  config.window_epochs = cursor.get<std::uint32_t>();
  config.classifier.min_gap = cursor.get<std::uint32_t>();
  config.classifier.ratio_threshold = cursor.get_double();
  config.classifier.mean_of_ratios = cursor.get<std::uint8_t>() != 0;
  config.observation.sibling_aware = cursor.get<std::uint8_t>() != 0;
  return config;
}

[[nodiscard]] inline bool same_window_config(const WindowConfig& a,
                                             const WindowConfig& b) noexcept {
  return a.epoch_seconds == b.epoch_seconds &&
         a.window_epochs == b.window_epochs &&
         a.classifier.min_gap == b.classifier.min_gap &&
         a.classifier.ratio_threshold == b.classifier.ratio_threshold &&
         a.classifier.mean_of_ratios == b.classifier.mean_of_ratios &&
         a.observation.sibling_aware == b.observation.sibling_aware;
}

[[nodiscard]] inline Intent get_intent(Cursor& cursor) {
  const std::uint8_t raw = cursor.get<std::uint8_t>();
  if (raw > static_cast<std::uint8_t>(Intent::kUnclassified))
    throw JournalError(
        util::format("journal intent byte %u is not a valid intent", raw));
  return static_cast<Intent>(raw);
}

}  // namespace bgpintent::stream::wire
