#include "stream/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "stream/wire.hpp"
#include "util/strings.hpp"

namespace bgpintent::stream {

namespace fs = std::filesystem;

namespace {

constexpr char kCheckpointMagic[8] = {'B', 'G', 'P', 'I', 'J', 'C', 'K', 'P'};
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".ckpt";

void fsync_directory(const std::string& directory) {
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
}

void put_window_state(std::vector<std::uint8_t>& out,
                      const WindowState& state) {
  wire::put<std::uint64_t>(out, state.paths.size());
  for (const bgp::AsPath& path : state.paths) wire::put_aspath(out, path);

  wire::put<std::uint64_t>(out, state.ring.size());
  for (const WindowState::EpochState& epoch : state.ring) {
    wire::put<std::uint64_t>(out, epoch.id);
    wire::put<std::uint64_t>(out, epoch.tuples.size());
    for (const auto& [key, count] : epoch.tuples) {
      wire::put<std::uint64_t>(out, key);
      wire::put<std::uint32_t>(out, count);
    }
  }

  wire::put<std::uint64_t>(out, state.alphas.size());
  for (const WindowState::AlphaLabels& alpha : state.alphas) {
    wire::put<std::uint16_t>(out, alpha.alpha);
    wire::put<std::uint64_t>(out, alpha.labels.size());
    for (const auto& [beta, intent] : alpha.labels) {
      wire::put<std::uint16_t>(out, beta);
      wire::put<std::uint8_t>(out, static_cast<std::uint8_t>(intent));
    }
  }

  wire::put<std::uint64_t>(out, state.dirty.size());
  for (const std::uint16_t alpha : state.dirty)
    wire::put<std::uint16_t>(out, alpha);

  wire::put<std::uint8_t>(out, state.started ? 1 : 0);
  wire::put<std::uint64_t>(out, state.current_epoch);
  wire::put<std::uint32_t>(out, state.latest_timestamp);
  wire::put<std::uint64_t>(out, state.announces);
  wire::put<std::uint64_t>(out, state.withdraws);
  wire::put<std::uint64_t>(out, state.expired_epochs);
  wire::put<std::uint64_t>(out, state.reclassified_communities);
}

[[nodiscard]] WindowState get_window_state(wire::Cursor& cursor) {
  WindowState state;
  const std::size_t paths = cursor.get_count(/*u32 count prefix*/ 4);
  state.paths.reserve(paths);
  for (std::size_t i = 0; i < paths; ++i)
    state.paths.push_back(wire::get_aspath(cursor));

  const std::size_t ring = cursor.get_count(8 + 8);
  state.ring.reserve(ring);
  for (std::size_t i = 0; i < ring; ++i) {
    WindowState::EpochState epoch;
    epoch.id = cursor.get<std::uint64_t>();
    const std::size_t tuples = cursor.get_count(8 + 4);
    epoch.tuples.reserve(tuples);
    for (std::size_t t = 0; t < tuples; ++t) {
      const std::uint64_t key = cursor.get<std::uint64_t>();
      const std::uint32_t count = cursor.get<std::uint32_t>();
      epoch.tuples.emplace_back(key, count);
    }
    state.ring.push_back(std::move(epoch));
  }

  const std::size_t alphas = cursor.get_count(2 + 8);
  state.alphas.reserve(alphas);
  for (std::size_t i = 0; i < alphas; ++i) {
    WindowState::AlphaLabels alpha;
    alpha.alpha = cursor.get<std::uint16_t>();
    const std::size_t labels = cursor.get_count(2 + 1);
    alpha.labels.reserve(labels);
    for (std::size_t l = 0; l < labels; ++l) {
      const std::uint16_t beta = cursor.get<std::uint16_t>();
      alpha.labels.emplace_back(beta, wire::get_intent(cursor));
    }
    state.alphas.push_back(std::move(alpha));
  }

  const std::size_t dirty = cursor.get_count(2);
  state.dirty.reserve(dirty);
  for (std::size_t i = 0; i < dirty; ++i)
    state.dirty.push_back(cursor.get<std::uint16_t>());

  state.started = cursor.get<std::uint8_t>() != 0;
  state.current_epoch = cursor.get<std::uint64_t>();
  state.latest_timestamp = cursor.get<std::uint32_t>();
  state.announces = cursor.get<std::uint64_t>();
  state.withdraws = cursor.get<std::uint64_t>();
  state.expired_epochs = cursor.get<std::uint64_t>();
  state.reclassified_communities = cursor.get<std::uint64_t>();
  return state;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint_payload(
    const CheckpointData& data) {
  std::vector<std::uint8_t> out;
  wire::put_window_config(out, data.config);
  put_window_state(out, data.state.window);

  wire::put<std::uint64_t>(out, data.state.events.size());
  for (const Event& event : data.state.events) {
    wire::put<std::uint64_t>(out, event.seq);
    wire::put<std::uint32_t>(out, event.change.community.wire());
    wire::put<std::uint8_t>(out,
                            static_cast<std::uint8_t>(event.change.previous));
    wire::put<std::uint8_t>(out,
                            static_cast<std::uint8_t>(event.change.current));
    wire::put<std::uint64_t>(out, event.change.epoch);
  }
  wire::put<std::uint64_t>(out, data.state.next_seq);
  wire::put<std::uint64_t>(out, data.state.decode_ok);
  wire::put<std::uint64_t>(out, data.state.decode_errors);
  wire::put<std::uint64_t>(out, data.state.updates_since_reclassify);
  return out;
}

CheckpointData decode_checkpoint_payload(
    std::span<const std::uint8_t> payload) {
  wire::Cursor cursor(payload);
  CheckpointData data;
  data.config = wire::get_window_config(cursor);
  data.state.window = get_window_state(cursor);

  const std::size_t events = cursor.get_count(8 + 4 + 1 + 1 + 8);
  data.state.events.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    Event event;
    event.seq = cursor.get<std::uint64_t>();
    event.change.community = Community::from_wire(cursor.get<std::uint32_t>());
    event.change.previous = wire::get_intent(cursor);
    event.change.current = wire::get_intent(cursor);
    event.change.epoch = cursor.get<std::uint64_t>();
    data.state.events.push_back(event);
  }
  data.state.next_seq = cursor.get<std::uint64_t>();
  data.state.decode_ok = cursor.get<std::uint64_t>();
  data.state.decode_errors = cursor.get<std::uint64_t>();
  data.state.updates_since_reclassify = cursor.get<std::uint64_t>();
  cursor.expect_end("checkpoint payload");
  return data;
}

std::string checkpoint_file_name(std::uint64_t records) {
  return util::format("%s%020llu%s", kCheckpointPrefix,
                      static_cast<unsigned long long>(records),
                      kCheckpointSuffix);
}

std::string checkpoint_path(const std::string& directory,
                            std::uint64_t records) {
  return (fs::path(directory) / checkpoint_file_name(records)).string();
}

void save_checkpoint(const std::string& directory, std::uint64_t records,
                     const CheckpointData& data) {
  const std::vector<std::uint8_t> payload = encode_checkpoint_payload(data);

  std::vector<std::uint8_t> bytes;
  bytes.reserve(kCheckpointHeaderBytes + payload.size());
  for (const char c : kCheckpointMagic)
    bytes.push_back(static_cast<std::uint8_t>(c));
  wire::put<std::uint32_t>(bytes, kCheckpointVersion);
  wire::put<std::uint64_t>(bytes, wire::fnv1a64(payload));
  wire::put<std::uint64_t>(bytes, payload.size());
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const std::string path = checkpoint_path(directory, records);
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0)
    throw JournalError(util::format("cannot open %s: %s", tmp.c_str(),
                                    std::strerror(errno)));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      ::close(fd);
      std::remove(tmp.c_str());
      throw JournalError(
          util::format("write to %s failed: %s", tmp.c_str(), detail.c_str()));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw JournalError(util::format("cannot persist %s: %s", tmp.c_str(),
                                    std::strerror(errno)));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string detail = std::strerror(errno);
    std::remove(tmp.c_str());
    throw JournalError(util::format("cannot rename %s into place: %s",
                                    tmp.c_str(), detail.c_str()));
  }
  // Make the rename itself durable: without a directory fsync a power
  // loss can undo the link and the checkpoint vanishes, weakening the
  // --checkpoint-interval bounded-replay guarantee.
  fsync_directory(directory);
}

CheckpointData load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JournalError(util::format("cannot open %s", path.c_str()));
  std::vector<std::uint8_t> bytes;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0)
    bytes.insert(bytes.end(), buffer, buffer + in.gcount());
  if (in.bad())
    throw JournalError(util::format("failed to read %s", path.c_str()));

  if (bytes.size() < kCheckpointHeaderBytes)
    throw JournalError(
        util::format("%s: checkpoint header truncated", path.c_str()));
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof kCheckpointMagic) !=
      0)
    throw JournalError(
        util::format("%s: not a checkpoint (bad magic)", path.c_str()));
  const std::span<const std::uint8_t> all(bytes);
  wire::Cursor header(all.subspan(
      sizeof kCheckpointMagic,
      kCheckpointHeaderBytes - sizeof kCheckpointMagic));
  const std::uint32_t version = header.get<std::uint32_t>();
  if (version != kCheckpointVersion)
    throw JournalError(util::format(
        "%s: checkpoint version %u is not the supported version %u",
        path.c_str(), version, kCheckpointVersion));
  const std::uint64_t checksum = header.get<std::uint64_t>();
  const std::uint64_t size = header.get<std::uint64_t>();
  if (size != bytes.size() - kCheckpointHeaderBytes)
    throw JournalError(util::format(
        "%s: checkpoint payload size mismatch (header %llu, file %llu)",
        path.c_str(), static_cast<unsigned long long>(size),
        static_cast<unsigned long long>(bytes.size() -
                                        kCheckpointHeaderBytes)));
  const auto payload = all.subspan(kCheckpointHeaderBytes);
  if (wire::fnv1a64(payload) != checksum)
    throw JournalError(
        util::format("%s: checkpoint checksum mismatch", path.c_str()));
  return decode_checkpoint_payload(payload);
}

std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> checkpoints;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kCheckpointPrefix) ||
        !name.ends_with(kCheckpointSuffix))
      continue;
    const auto digits = std::string_view(name).substr(
        sizeof kCheckpointPrefix - 1,
        name.size() - (sizeof kCheckpointPrefix - 1) -
            (sizeof kCheckpointSuffix - 1));
    const auto records = util::parse_u64(digits);
    if (!records) continue;
    checkpoints.emplace_back(*records, entry.path().string());
  }
  std::sort(checkpoints.begin(), checkpoints.end());
  return checkpoints;
}

}  // namespace bgpintent::stream
