// Crash recovery for journaled stream engines: checkpoint-load plus
// bounded journal replay.
//
// recover_stream() turns a journal directory back into a running
// StreamEngine:
//
//   1. Scan the segments (stream/journal.hpp).  Tolerant recovery
//      truncates the journal at the first torn or corrupt frame — the
//      valid prefix survives, everything after is physically removed and
//      counted in torn_tail_truncated; strict recovery refuses instead.
//   2. Pick the newest checkpoint covering <= the valid record count and
//      restore it (falling back to older checkpoints, then to empty, when
//      a checkpoint file itself is damaged — tolerant only).
//   3. Replay the records past the checkpoint.  Updates re-apply to the
//      window; kReclassify markers re-run the classification passes at
//      the exact boundaries of the original run, so the regenerated
//      label-change events — sequence numbers included — are
//      bit-identical, and the journaled event copies act as cross-checks.
//   4. Attach a JournalWriter resuming at the recovered record index, so
//      the engine keeps appending where the crashed process stopped and
//      reconnecting subscribers' `SUBSCRIBE from=seq` continues gap-free.
//
// The WindowConfig precedence mirrors the serve snapshot rule
// (persisted config wins over flags): checkpoint config, else the
// journal's record-0 kConfig, else RecoveryOptions::config.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stream/checkpoint.hpp"
#include "stream/engine.hpp"
#include "stream/journal.hpp"
#include "topo/org_map.hpp"

namespace bgpintent::stream {

struct RecoveryOptions {
  /// Strict recovery throws JournalError at the first torn frame, corrupt
  /// checkpoint, or replay inconsistency; tolerant recovery truncates and
  /// keeps the valid prefix.
  bool strict = false;
  /// Used only when the journal carries no config (fresh/empty directory,
  /// or its record 0 was lost to a tear).
  WindowConfig config;
  /// Must be the OrgMap of the original run: sibling-aware classification
  /// is not journaled, it is re-derived.
  const topo::OrgMap* orgs = nullptr;
  /// Forwarded to StreamEngine::attach_journal on the recovered engine.
  std::uint64_t checkpoint_interval_updates = 0;
};

struct RecoveryReport {
  std::uint64_t journal_records = 0;   ///< valid records recovered from
  std::uint64_t records_replayed = 0;  ///< records applied past checkpoint
  std::uint64_t recovered_events = 0;  ///< last event seq after recovery
  std::uint64_t torn_tail_truncated = 0;  ///< files truncated or removed
  std::uint64_t checkpoint_record = 0; ///< records the checkpoint covered
  bool used_checkpoint = false;
  bool fresh = false;  ///< no records and no checkpoint: a brand-new journal
  /// The journal/checkpoint carried a config differing from
  /// RecoveryOptions::config; the persisted one won.
  bool config_overridden = false;
  std::string torn_detail;  ///< human-readable tear description, if any
};

/// Recovers an engine from `config.directory` and attaches a writer that
/// resumes appending at the recovered record index (an empty or missing
/// directory recovers to a fresh engine with a fresh journal).  Throws
/// JournalError per RecoveryOptions::strict.
[[nodiscard]] std::unique_ptr<StreamEngine> recover_stream(
    const JournalConfig& config, const RecoveryOptions& options = {},
    RecoveryReport* report = nullptr);

struct ReplayReport {
  std::uint64_t records_applied = 0;
  std::uint64_t stopped_at = 0;  ///< record index of the first failure
  bool complete = true;
  std::string detail;
};

/// Replays records [from_record, end) of `directory` into `engine`
/// without journaling side effects — the crash harness uses this to drive
/// a recovered engine through the rest of the original journal and compare
/// final states.  `engine` must already reflect exactly `from_record`
/// records.  Strict throws on inconsistency; tolerant stops and reports.
ReplayReport replay_journal(StreamEngine& engine, const std::string& directory,
                            std::uint64_t from_record, bool strict);

/// What `bgpintent recover` prints: scan result, checkpoints, per-type
/// record counts.  Always tolerant; never mutates the directory.
struct JournalInspection {
  ScanSummary scan;
  std::vector<std::pair<std::uint64_t, std::string>> checkpoints;
  /// Indexed by RecordType raw value (1..8; 0 unused).
  std::array<std::uint64_t, 9> type_counts{};
  std::uint64_t undecodable = 0;  ///< CRC-valid frames decode_record rejects
  std::uint64_t last_event_seq = 0;
};
[[nodiscard]] JournalInspection inspect_journal(const std::string& directory);

}  // namespace bgpintent::stream
