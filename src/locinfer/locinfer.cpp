#include "locinfer/locinfer.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace bgpintent::locinfer {

std::vector<LocationInference> infer_locations(
    std::span<const bgp::RibEntry> entries,
    const LocationInferenceConfig& config) {
  struct Accumulator {
    std::unordered_set<std::uint64_t> paths;
    std::unordered_set<bgp::Asn> successors;
  };
  std::unordered_map<Community, Accumulator> per_community;
  // All distinct successors of each alpha, across every route where it
  // transits (denominator of the concentration test).
  std::unordered_map<std::uint16_t, std::unordered_set<bgp::Asn>>
      alpha_successors;

  for (const bgp::RibEntry& entry : entries) {
    const bgp::AsPath& path = entry.route.path;
    // Record successors for every 16-bit AS on the path.
    for (const bgp::Asn asn : path.unique_asns()) {
      if (asn > 0xffff) continue;
      if (const auto next = path.next_toward_origin(asn))
        alpha_successors[static_cast<std::uint16_t>(asn)].insert(*next);
    }
    for (const Community community : entry.route.communities) {
      if (!path.contains(community.alpha())) continue;  // baseline: on-path only
      auto& acc = per_community[community];
      acc.paths.insert(path.hash());
      if (const auto next = path.next_toward_origin(community.alpha()))
        acc.successors.insert(*next);
    }
  }

  std::vector<LocationInference> out;
  out.reserve(per_community.size());
  for (const auto& [community, acc] : per_community) {
    LocationInference inference;
    inference.community = community;
    inference.support = acc.paths.size();
    inference.distinct_successors = acc.successors.size();
    const auto alpha_it = alpha_successors.find(community.alpha());
    const std::size_t alpha_total =
        alpha_it == alpha_successors.end() ? 0 : alpha_it->second.size();
    inference.inferred_location =
        inference.support >= config.min_support &&
        inference.distinct_successors > 0 &&
        inference.distinct_successors <= config.max_successors &&
        alpha_total > 0 &&
        static_cast<double>(inference.distinct_successors) <=
            config.max_successor_fraction * static_cast<double>(alpha_total);
    out.push_back(inference);
  }
  std::sort(out.begin(), out.end(),
            [](const LocationInference& a, const LocationInference& b) {
              return a.community < b.community;
            });
  return out;
}

std::string_view to_string(Table1Class klass) noexcept {
  switch (klass) {
    case Table1Class::kGeolocation: return "Geolocation";
    case Table1Class::kTrafficEngineering: return "Traffic Engineering";
    case Table1Class::kRouteType: return "Route Type";
    case Table1Class::kInternal: return "Internal Routes";
  }
  return "?";
}

Table1Class table1_class(dict::Category category) noexcept {
  if (dict::is_location_category(category)) return Table1Class::kGeolocation;
  if (category == dict::Category::kRelationship) return Table1Class::kRouteType;
  if (dict::intent_of(category) == dict::Intent::kAction)
    return Table1Class::kTrafficEngineering;
  return Table1Class::kInternal;
}

const Table1Row* Table1Result::row(Table1Class klass) const noexcept {
  for (const Table1Row& r : rows)
    if (r.klass == klass) return &r;
  return nullptr;
}

Table1Result table1_comparison(
    const std::vector<LocationInference>& inferences,
    const dict::DictionaryStore& truth, const core::InferenceResult& intent) {
  Table1Result result;
  result.rows = {
      {Table1Class::kGeolocation, 0, 0},
      {Table1Class::kTrafficEngineering, 0, 0},
      {Table1Class::kRouteType, 0, 0},
      {Table1Class::kInternal, 0, 0},
  };
  auto row_of = [&result](Table1Class klass) -> Table1Row& {
    for (Table1Row& r : result.rows)
      if (r.klass == klass) return r;
    return result.rows.front();
  };

  for (const LocationInference& inference : inferences) {
    if (!inference.inferred_location) continue;
    // Table 1 uses ground-truth labels; unlabeled communities are not rows.
    const dict::DictEntry* entry = truth.lookup(inference.community);
    if (entry == nullptr) continue;
    Table1Row& r = row_of(table1_class(entry->category));
    ++r.before;
    ++result.total_before;
    // The paper's filter: drop communities the method inferred as action.
    if (intent.label_of(inference.community) == dict::Intent::kAction)
      continue;
    ++r.after;
    ++result.total_after;
  }
  const auto* geo = result.row(Table1Class::kGeolocation);
  if (result.total_before > 0)
    result.precision_before = static_cast<double>(geo->before) /
                              static_cast<double>(result.total_before);
  if (result.total_after > 0)
    result.precision_after = static_cast<double>(geo->after) /
                             static_cast<double>(result.total_after);
  return result;
}

}  // namespace bgpintent::locinfer
