// Location-community inference baseline (Da Silva Jr. et al., SIGMETRICS
// 2022) and the Table-1 experiment of the reproduced paper.
//
// The baseline marks a community as a *location* community when the routes
// it tags enter the owning AS through a concentrated set of ingress
// neighbors: a geo tag is attached at one PoP, so the successor of alpha on
// tagged paths is (nearly) unique, while broad tags (relationship, ROV)
// appear across many ingress neighbors.
//
// Crucially, the heuristic reproduces the published failure mode: targeted
// traffic-engineering *action* communities are also attached by only a few
// customers and therefore look concentrated — the false positives that the
// paper's intent classifier removes, raising precision from 68.2% to 94.8%
// (Table 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/route.hpp"
#include "core/classifier.hpp"
#include "dict/dictionary.hpp"

namespace bgpintent::locinfer {

using bgp::Community;

struct LocationInferenceConfig {
  /// Minimum unique tagged on-path paths before inferring anything.
  std::size_t min_support = 2;
  /// Location if distinct ingress successors <= this absolute bound ...
  std::size_t max_successors = 3;
  /// ... and <= this fraction of the owner's total distinct successors.
  double max_successor_fraction = 0.34;
};

/// Per-community outcome of the baseline.
struct LocationInference {
  Community community;
  std::size_t support = 0;             ///< unique on-path tagged paths
  std::size_t distinct_successors = 0; ///< ingress neighbors of alpha
  bool inferred_location = false;
};

/// Runs the baseline over RIB entries.  Only communities whose alpha
/// appears on the tagged path contribute (the baseline has no notion of
/// off-path, which is precisely its blind spot).
[[nodiscard]] std::vector<LocationInference> infer_locations(
    std::span<const bgp::RibEntry> entries,
    const LocationInferenceConfig& config = {});

/// Ground-truth row classes of Table 1.
enum class Table1Class : std::uint8_t {
  kGeolocation,         ///< location information communities (true positives)
  kTrafficEngineering,  ///< action communities (the dominant false positives)
  kRouteType,           ///< relationship information communities
  kInternal,            ///< other information communities (ROV, interface, ...)
};

[[nodiscard]] std::string_view to_string(Table1Class klass) noexcept;

/// Maps a fine-grained dictionary category onto its Table-1 row.
[[nodiscard]] Table1Class table1_class(dict::Category category) noexcept;

/// The before/after comparison of Table 1: location inferences broken down
/// by ground-truth class, before and after removing communities the intent
/// classifier labeled action.
struct Table1Row {
  Table1Class klass;
  std::size_t before = 0;
  std::size_t after = 0;
};

struct Table1Result {
  std::vector<Table1Row> rows;
  std::size_t total_before = 0;
  std::size_t total_after = 0;
  double precision_before = 0.0;  ///< geolocation / total
  double precision_after = 0.0;

  [[nodiscard]] const Table1Row* row(Table1Class klass) const noexcept;
};

/// Scores inferred-location communities against the ground-truth
/// dictionary (rows use the dictionary's labels, as in the paper) and
/// applies the action filter from `intent`.
[[nodiscard]] Table1Result table1_comparison(
    const std::vector<LocationInference>& inferences,
    const dict::DictionaryStore& truth,
    const core::InferenceResult& intent);

}  // namespace bgpintent::locinfer
