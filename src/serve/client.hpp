// Blocking TCP client for the bgpintent query daemon.
//
// One request line out, one response line in (serve/protocol.hpp).  The
// raw request() call returns the response verbatim; the typed helpers
// parse the OK key=value form and throw ServeError on ERR responses, so
// library consumers never string-match the protocol themselves.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "core/incremental.hpp"
#include "serve/binary.hpp"
#include "serve/protocol.hpp"

namespace bgpintent::serve {

/// Connection failure carrying the socket errno, so callers can tell a
/// transient refusal (server still starting, restart in progress) from a
/// permanent one (bad address) and retry accordingly.
class ConnectError : public ServeError {
 public:
  ConnectError(const std::string& what, int error) noexcept
      : ServeError(what), errno_(error) {}

  [[nodiscard]] int error() const noexcept { return errno_; }

  /// True for the errno values a retry can plausibly fix: ECONNREFUSED,
  /// ETIMEDOUT, ECONNRESET, EHOSTUNREACH, ENETUNREACH, EAGAIN, EINTR.
  [[nodiscard]] bool transient() const noexcept;

 private:
  int errno_;
};

/// Capped exponential backoff with deterministic jitter for
/// Client::connect_with_retry.  Defaults suit a daemon restarting on the
/// same box: ~6 attempts spread over roughly two seconds.
struct RetryPolicy {
  unsigned max_attempts = 6;
  /// Delay before attempt k (0-based) is initial_delay_ms * 2^(k-1),
  /// capped at max_delay_ms, then jittered by up to +/- jitter of itself.
  unsigned initial_delay_ms = 50;
  unsigned max_delay_ms = 1000;
  /// Jitter fraction in [0, 1): spreads reconnect stampedes when many
  /// clients chase one restarting server.  Drawn from a seeded Rng so
  /// tests are reproducible.
  double jitter = 0.25;
  std::uint64_t jitter_seed = 0;
};

class Client {
 public:
  /// Connects to an IPv4 host ("127.0.0.1") and port; throws ConnectError
  /// (a ServeError) when the host is unreachable or not an IPv4 literal.
  [[nodiscard]] static Client connect(const std::string& host,
                                      std::uint16_t port);

  /// connect(), but transient failures (ConnectError::transient — e.g.
  /// ECONNREFUSED while the daemon is still binding, ETIMEDOUT across a
  /// flaky hop) are retried under `policy` with capped exponential
  /// backoff and jitter.  Non-transient failures and exhaustion of the
  /// attempt budget rethrow the last ConnectError.
  [[nodiscard]] static Client connect_with_retry(const std::string& host,
                                                 std::uint16_t port,
                                                 const RetryPolicy& policy = {});

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line and returns the one response line (without the
  /// newline).  Throws ServeError when the connection drops or the server
  /// answers with something longer than kMaxLineBytes.
  [[nodiscard]] std::string request(const std::string& line);

  // --- push-stream primitives (SUBSCRIBE, docs/STREAMING.md) ---

  /// Sends one request line without reading a response — the first half of
  /// request(), for protocols where the server answers with multiple lines
  /// (SUBSCRIBE) and the caller drains them via read_line().
  void send_line(const std::string& line);

  /// Reads one line, waiting up to `timeout_ms` (negative = forever) for
  /// bytes to arrive.  Returns nullopt on timeout; throws ServeError when
  /// the connection drops or a line exceeds kMaxLineBytes.
  [[nodiscard]] std::optional<std::string> read_line(int timeout_ms = -1);

  // --- binary protocol (serve/binary.hpp) ---

  /// Upgrades the connection to the binary protocol: sends the magic
  /// hello and waits for the server's acknowledgement.  Must be the first
  /// exchange on the connection (the server decides the protocol from the
  /// first byte).  Throws ServeError on version skew or a line-protocol
  /// server.  After this, label()/labels() speak frames transparently.
  void negotiate_binary();

  [[nodiscard]] bool binary() const noexcept { return binary_; }

  /// BATCH-LABEL: one round trip for many communities (binary mode); on a
  /// line-protocol connection this degrades to one LABEL per community.
  [[nodiscard]] std::vector<dict::Intent> labels(
      std::span<const bgp::Community> communities);

  /// Binary STATS frame (requires negotiate_binary()).
  [[nodiscard]] binary::StatsPayload binary_stats();

  // --- typed helpers; each throws ServeError on an ERR response ---

  /// LABEL: the server's current intent label for `community`.
  [[nodiscard]] dict::Intent label(bgp::Community community);

  /// INGEST: feeds one (path, communities) observation.  The path must be
  /// a pure AS_SEQUENCE (wire form limitation, serve/protocol.hpp).
  void ingest(const bgp::AsPath& path,
              std::span<const bgp::Community> communities);

  /// TOTALS: the server's global label counters.
  [[nodiscard]] core::IncrementalClassifier::Totals totals();

  /// SNAPSHOT: asks the server to persist its state to a server-side path.
  void snapshot(const std::string& path);

  /// QUIT: polite close (the destructor just closes the socket).
  void quit();

 private:
  explicit Client(int fd) noexcept : fd_(fd) {}

  void send_raw(std::string_view bytes);
  /// Reads one complete binary frame into `frame_buf_` and returns its
  /// tag (status byte) + body; throws ServeError on close or oversize.
  [[nodiscard]] std::uint8_t read_frame(std::string& body);
  [[noreturn]] void throw_wire_error(std::string_view body);

  int fd_ = -1;
  bool binary_ = false;
  std::string buffer_;  // bytes received beyond the last returned line
  std::string scratch_;  // request encode arena (binary mode)
};

}  // namespace bgpintent::serve
