// Blocking TCP client for the bgpintent query daemon.
//
// One request line out, one response line in (serve/protocol.hpp).  The
// raw request() call returns the response verbatim; the typed helpers
// parse the OK key=value form and throw ServeError on ERR responses, so
// library consumers never string-match the protocol themselves.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "core/incremental.hpp"
#include "serve/protocol.hpp"

namespace bgpintent::serve {

class Client {
 public:
  /// Connects to an IPv4 host ("127.0.0.1") and port; throws ServeError
  /// when the host is unreachable or not an IPv4 literal.
  [[nodiscard]] static Client connect(const std::string& host,
                                      std::uint16_t port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line and returns the one response line (without the
  /// newline).  Throws ServeError when the connection drops or the server
  /// answers with something longer than kMaxLineBytes.
  [[nodiscard]] std::string request(const std::string& line);

  // --- typed helpers; each throws ServeError on an ERR response ---

  /// LABEL: the server's current intent label for `community`.
  [[nodiscard]] dict::Intent label(bgp::Community community);

  /// INGEST: feeds one (path, communities) observation.  The path must be
  /// a pure AS_SEQUENCE (wire form limitation, serve/protocol.hpp).
  void ingest(const bgp::AsPath& path,
              std::span<const bgp::Community> communities);

  /// TOTALS: the server's global label counters.
  [[nodiscard]] core::IncrementalClassifier::Totals totals();

  /// SNAPSHOT: asks the server to persist its state to a server-side path.
  void snapshot(const std::string& path);

  /// QUIT: polite close (the destructor just closes the socket).
  void quit();

 private:
  explicit Client(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes received beyond the last returned line
};

}  // namespace bgpintent::serve
