// Wire conventions shared by the query server, the client, and their tests.
//
// The protocol is line-based text over TCP (docs/SERVING.md): one request
// line in, one response line out.  Responses start with "OK" followed by
// space-separated key=value pairs, or "ERR <message>".  Requests:
//
//   LABEL <alpha:beta>              current intent label of one community
//   INGEST <as-path> <communities> [<as-path> <communities> ...]
//                                   feed (path, communities) observations;
//                                   in a multi-pair batch malformed pairs
//                                   are skipped and counted in the
//                                   response's errors= field (a single
//                                   malformed pair still answers ERR)
//   TOTALS                          global label counters
//   STATS                           server counters, cumulative decode
//                                   counters (decode_ok / decode_errors),
//                                   and query latency
//   SNAPSHOT <file>                 persist classifier state server-side
//                                   (classic mode only; stream mode
//                                   answers ERR)
//   SUBSCRIBE [snapshot] [from=<seq>]
//                                   stream mode only: upgrade the
//                                   connection to a push stream of label
//                                   changes.  The response's first line is
//                                   "OK subscribed seq=<s>"; with
//                                   `snapshot` (or when `from=` points
//                                   before the buffered event log) it is
//                                   followed by "DATA community=<a:b>
//                                   label=<l>" lines and "END snapshot
//                                   seq=<s>".  Afterwards the server
//                                   pushes "EVENT seq=<n>
//                                   community=<a:b> old=<l> new=<l>
//                                   epoch=<e>" lines as labels change
//                                   (docs/STREAMING.md)
//   QUIT                            close the connection
//
// AS paths travel comma-separated ("61,100,201" — AS_SEQUENCE only, AS_SET
// aggregates cannot be expressed); community lists comma-separated
// ("100:1,200:2") with "-" encoding the empty list.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"

namespace bgpintent::serve {

/// Thrown by the client and server on connection, IO, or protocol failures.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Request lines longer than this are rejected and the connection closed.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// "61,100,201" form of a pure AS_SEQUENCE path; nullopt when the path
/// contains an AS_SET (the wire form cannot express aggregates) or is empty.
[[nodiscard]] std::optional<std::string> format_path(const bgp::AsPath& path);

/// Inverse of format_path; nullopt on malformed ASNs or empty input.
[[nodiscard]] std::optional<bgp::AsPath> parse_path(std::string_view text);

/// "100:1,200:2" form; "-" for an empty list.
[[nodiscard]] std::string format_communities(
    std::span<const bgp::Community> communities);

/// Inverse of format_communities; nullopt on malformed values.
[[nodiscard]] std::optional<std::vector<bgp::Community>> parse_communities(
    std::string_view text);

/// Splits an "OK key=value ..." response line into its pairs; nullopt when
/// the line is not an OK response (including "ERR ..." lines).
[[nodiscard]] std::optional<std::map<std::string, std::string>>
parse_ok_response(std::string_view line);

}  // namespace bgpintent::serve
