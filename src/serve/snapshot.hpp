// Versioned binary persistence for IncrementalClassifier state.
//
// The serve daemon must survive restarts without replaying weeks of BGP
// data, so the complete classifier state — configs, per-community path-hash
// accumulators, cached labels, dirty set, interned-path arenas, ingest
// counter — round-trips through a self-describing binary file.  Two
// formats are readable (docs/SERVING.md §3 spells out both layouts):
//
//   v2 — row-oriented:
//     offset  size  field
//     0       8     magic "BGPISNAP"
//     8       4     format version (u32 LE, = 2)
//     12      8     FNV-1a-64 checksum of the payload bytes (u64 LE)
//     20      8     payload size in bytes (u64 LE)
//     28      ...   payload (length-prefixed records, decoded one by one)
//
//   v3 — columnar, written for mmap:
//     0       8     magic "BGPISNAP"
//     8       4     format version (u32 LE, = 3)
//     12      4     flags (u32 LE, reserved, must be 0)
//     16..    —     zero pad to 64
//     64..    —     column segments, each 64-byte aligned, zero pad between
//     ...     —     segment table: one 32-byte entry per segment
//                   {kind u32, elem_width u32, offset u64, byte_size u64,
//                    FNV-1a-64 checksum u64}
//     end-32  32    footer {segment table offset u64, segment count u32,
//                   footer magic "SNP3" u32, segment table checksum u64,
//                   total file size u64}
//
//   Every column is a flat array of fixed-width little-endian elements, so
//   a reader on a little-endian host can serve straight out of an mmap of
//   the file — no per-record decode, pages fault in lazily, and N
//   processes mapping one snapshot share one physical copy
//   (serve::MappedSnapshot + core::StateView).
//
// All integers little-endian.  Loading rejects, with a SnapshotError that
// names the problem (and for v3 the failing region): wrong magic, a
// version this build does not read, checksum mismatches (bit rot, torn
// writes), truncated input, trailing bytes, and — v3 — any structural
// inconsistency between columns.  save_snapshot(path) writes to
// "<path>.tmp", fsyncs, renames, and fsyncs the parent directory, so
// readers never observe a half-written file and the rename survives power
// loss.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "core/state_view.hpp"
#include "mrt/source.hpp"

namespace bgpintent::serve {

/// Thrown on any malformed, corrupt, or unsupported snapshot input.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The newest version this build reads and writes.  History: v1 had no
/// decode-error counters; v2 added them after the ingest counter; v3 is
/// the columnar layout above.  v2 files remain readable (the default
/// write format is still v2 so snapshots stay exchangeable with older
/// builds); v1 is rejected with re-ingest guidance — its payload is not
/// self-describing, so parsing it with a newer layout would misinterpret
/// evidence rather than fail.
inline constexpr std::uint32_t kSnapshotVersion = 3;
/// The oldest version this build still reads.
inline constexpr std::uint32_t kSnapshotVersionMin = 2;

/// On-disk format selector for the write path.
enum class SnapshotFormat : std::uint8_t { kV2 = 2, kV3 = 3 };

/// Serializes the classifier (configs + full state) to bytes.  kV2 is
/// byte-identical to what pre-v3 builds wrote; kV3 additionally persists
/// the interned-path arenas so a restart skips re-interning.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const core::IncrementalClassifier& classifier,
    SnapshotFormat format = SnapshotFormat::kV2);

/// Reconstructs a classifier from encode_snapshot() output (either
/// version; the header's version field picks the decoder).  The org map
/// is not persisted — re-attach it with set_org_map() after loading.
/// Throws SnapshotError on corrupt or unsupported input.
[[nodiscard]] core::IncrementalClassifier decode_snapshot(
    std::span<const std::uint8_t> bytes);

/// Stream variants of the above.
void save_snapshot(const core::IncrementalClassifier& classifier,
                   std::ostream& out,
                   SnapshotFormat format = SnapshotFormat::kV2);
[[nodiscard]] core::IncrementalClassifier load_snapshot(std::istream& in);

/// File variants.  Saving writes "<path>.tmp", fsyncs it, renames it over
/// `path`, then fsyncs the parent directory, so a crash mid-write never
/// corrupts the previous snapshot and the rename itself is durable; both
/// throw SnapshotError on IO failure.
void save_snapshot(const core::IncrementalClassifier& classifier,
                   const std::string& path,
                   SnapshotFormat format = SnapshotFormat::kV2);
[[nodiscard]] core::IncrementalClassifier load_snapshot(
    const std::string& path);

/// Writes already-encoded snapshot bytes with the same tmp+fsync+rename+
/// dir-fsync discipline.  Lets the server encode under its classifier
/// lock but do the file IO outside it.
void write_snapshot_bytes(std::span<const std::uint8_t> bytes,
                          const std::string& path);

// --- v3 memory-mapped reading ---

struct MappedSnapshotOptions {
  /// Verify every column segment's FNV checksum at open (reads the whole
  /// file once).  Turning this off defers page-in entirely to first use —
  /// fastest possible restart — at the cost of detecting bit rot only
  /// where the structural validation happens to notice.
  bool verify_segment_checksums = true;
};

/// A v3 snapshot opened by mmap: the file's columns become borrowed
/// core::StateColumns with zero decode work, and the mapping stays alive
/// for as long as any StateView handed out by state_view() is referenced.
/// Structural validation (header, footer, segment table, column shapes)
/// always runs at open; see MappedSnapshotOptions for checksums.  Opening
/// a v2 file throws a SnapshotError telling the operator to re-save as v3.
class MappedSnapshot : public std::enable_shared_from_this<MappedSnapshot> {
 public:
  [[nodiscard]] static std::shared_ptr<MappedSnapshot> open(
      const std::string& path, MappedSnapshotOptions options = {});

  [[nodiscard]] const core::ClassifierConfig& classifier_config()
      const noexcept {
    return config_;
  }
  [[nodiscard]] const core::ObservationConfig& observation_config()
      const noexcept {
    return observation_;
  }

  /// The snapshot's columns as a borrowed view; the returned view keeps
  /// this MappedSnapshot (and thus the mapping) alive.  Hand it to
  /// IncrementalClassifier::restore_view.
  [[nodiscard]] std::shared_ptr<const core::StateView> state_view() const;

  /// The pre-flattened serve columns — label_snapshot() as two parallel
  /// arrays of (alpha<<16|beta) wires (sorted ascending) and intents —
  /// for building the initial RCU label epoch without touching any other
  /// column.
  [[nodiscard]] std::span<const std::uint32_t> label_wires() const noexcept {
    return columns_.serve_wires;
  }
  [[nodiscard]] std::span<const core::Intent> label_intents() const noexcept {
    return columns_.serve_intents;
  }

 private:
  struct Private {};

 public:
  MappedSnapshot(Private, std::unique_ptr<const mrt::ByteSource> source,
                 core::ClassifierConfig config,
                 core::ObservationConfig observation,
                 core::StateColumns columns) noexcept
      : source_(std::move(source)),
        config_(config),
        observation_(observation),
        columns_(columns) {}

 private:
  std::unique_ptr<const mrt::ByteSource> source_;
  core::ClassifierConfig config_;
  core::ObservationConfig observation_;
  core::StateColumns columns_;
};

/// One named byte region of a v3 image (a column segment, the segment
/// table, or the footer).  Exposed so corruption tests can aim damage at
/// every region and assert each one is individually defended; the names
/// match the region named in the rejection message.
struct SnapshotRegion {
  std::string name;
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Enumerates the regions of a well-formed v3 image (throws SnapshotError
/// if `bytes` is not one).
[[nodiscard]] std::vector<SnapshotRegion> snapshot_v3_regions(
    std::span<const std::uint8_t> bytes);

}  // namespace bgpintent::serve
