// Versioned binary persistence for IncrementalClassifier state.
//
// The serve daemon must survive restarts without replaying weeks of BGP
// data, so the complete classifier state — configs, per-community path-hash
// accumulators, cached labels, dirty set, ingest counter — round-trips
// through a self-describing binary file:
//
//   offset  size  field
//   0       8     magic "BGPISNAP"
//   8       4     format version (u32 LE, currently 2)
//   12      8     FNV-1a-64 checksum of the payload bytes (u64 LE)
//   20      8     payload size in bytes (u64 LE)
//   28      ...   payload (docs/SERVING.md spells out the layout)
//
// All integers little-endian.  Loading rejects, with a SnapshotError that
// names the problem: wrong magic, a version this build does not write
// (older versions would silently misparse — v2 inserted the decode-error
// counters mid-payload, so the reader tells the operator to re-ingest
// instead of guessing), checksum mismatches (bit rot, torn writes),
// truncated payloads, and trailing bytes.  save_snapshot(path) writes to
// "<path>.tmp" and renames, so readers never observe a half-written file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/incremental.hpp"

namespace bgpintent::serve {

/// Thrown on any malformed, corrupt, or unsupported snapshot input.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The version this build writes; readers accept exactly this version.
/// History: v1 had no decode-error counters; v2 added them after the
/// ingest counter.  Readers reject other versions outright — the payload
/// is not self-describing, so parsing a v1 payload with the v2 layout
/// would misinterpret evidence rather than fail.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Serializes the classifier (configs + full state) to bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const core::IncrementalClassifier& classifier);

/// Reconstructs a classifier from encode_snapshot() output.  The org map is
/// not persisted — re-attach it with set_org_map() after loading.  Throws
/// SnapshotError on corrupt or unsupported input.
[[nodiscard]] core::IncrementalClassifier decode_snapshot(
    std::span<const std::uint8_t> bytes);

/// Stream variants of the above.
void save_snapshot(const core::IncrementalClassifier& classifier,
                   std::ostream& out);
[[nodiscard]] core::IncrementalClassifier load_snapshot(std::istream& in);

/// File variants.  Saving writes "<path>.tmp" then renames it over `path`
/// so a crash mid-write never corrupts the previous snapshot; both throw
/// SnapshotError on IO failure.
void save_snapshot(const core::IncrementalClassifier& classifier,
                   const std::string& path);
[[nodiscard]] core::IncrementalClassifier load_snapshot(
    const std::string& path);

/// Writes already-encoded snapshot bytes with the same tmp+rename
/// discipline.  Lets the server encode under its classifier lock but do
/// the file IO outside it.
void write_snapshot_bytes(std::span<const std::uint8_t> bytes,
                          const std::string& path);

}  // namespace bgpintent::serve
