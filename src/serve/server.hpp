// Long-running query daemon over an IncrementalClassifier or a
// stream::StreamEngine.
//
// A POSIX TCP listener speaking the line protocol of serve/protocol.hpp.
// One accept thread polls the listening socket (and drives periodic
// snapshots); each accepted connection becomes a task on a
// util::ThreadPool worker, so the maximum number of concurrently *served*
// connections equals the pool size — further connections queue in the
// pool.  The classifier is guarded by one mutex: queries are sub-
// microsecond map lookups once labels are clean, so a single lock
// outperforms anything fancier until profiles say otherwise.
//
// Two backing modes share the command surface:
//   * classic (owned IncrementalClassifier): LABEL / INGEST / TOTALS /
//     STATS / SNAPSHOT; SUBSCRIBE answers ERR (no event stream exists);
//   * stream (borrowed stream::StreamEngine, `bgpintent stream --listen`):
//     the same verbs answer from the sliding window, SNAPSHOT answers ERR
//     (stream durability lives in the journal, not snapshot files — see
//     docs/STREAMING.md §6), and SUBSCRIBE turns the connection into a
//     push stream of label-change EVENT lines with delta/snapshot
//     resumption — the protocol of docs/STREAMING.md.
//
// Robustness guarantees:
//   * per-connection idle timeout (poll slices, ServerConfig::
//     read_timeout_ms) — a dead peer cannot pin a worker forever;
//   * max-line guard (protocol kMaxLineBytes) — a garbage peer cannot
//     balloon memory;
//   * bounded subscriber outboxes flushed with non-blocking sends — a
//     stalled subscriber cannot block the accept thread, and one that
//     stays full past the engine's event ring is disconnected with a
//     final `ERR lagged` (counted as subscribers_dropped in STATS);
//   * request_stop() is async-signal-safe (one atomic store), so SIGINT/
//     SIGTERM handlers can trigger a graceful drain: stop accepting,
//     finish in-flight commands, write a final snapshot if configured.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "serve/protocol.hpp"
#include "stream/engine.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::serve {

struct ServerConfig {
  /// IPv4 address to bind; loopback by default (the protocol has no auth).
  std::string listen_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (query it back via port()).
  std::uint16_t port = 0;
  /// Connection worker threads (ThreadPool convention: 0 = all cores).
  unsigned threads = 0;
  /// Close a connection after this long without a complete request line.
  int read_timeout_ms = 30000;
  /// Write a snapshot to `snapshot_path` every this many seconds (0 = only
  /// via the SNAPSHOT command and on graceful shutdown).
  unsigned snapshot_interval_s = 0;
  /// Snapshot destination; empty disables automatic snapshots.
  std::string snapshot_path;
  /// Per-subscriber outbox cap: once a subscriber's unsent bytes reach
  /// this, no further events are queued for it (backpressure falls to the
  /// engine's event ring); a capped subscriber that also falls off the
  /// ring is dropped with `ERR lagged`.
  std::size_t max_subscriber_queue_bytes = 1 << 20;
};

/// Counters reported by STATS (and readable in-process).
struct ServerStats {
  double uptime_seconds = 0.0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t queries_served = 0;  ///< LABEL commands answered
  std::uint64_t entries_ingested = 0;
  std::uint64_t dirty_alphas = 0;
  /// Cumulative decode outcome across every ingest path (MRT priming,
  /// INGEST batches, restored snapshots) — docs/ROBUSTNESS.md.
  std::uint64_t decode_records_ok = 0;
  std::uint64_t decode_records_skipped = 0;
  double p50_query_us = 0.0;  ///< over a window of recent LABEL queries
  double p99_query_us = 0.0;
  // Stream-mode counters (docs/STREAMING.md); zero in classic mode.
  std::uint64_t updates_ok = 0;
  std::uint64_t updates_errors = 0;
  std::uint64_t window_epochs = 0;
  std::uint64_t reclassified_communities = 0;
  std::uint64_t subscribers_dropped = 0;  ///< laggards closed with ERR lagged
  // Durability counters (docs/STREAMING.md §6); zero without --journal.
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t recovered_events = 0;
  std::uint64_t torn_tail_truncated = 0;
};

class Server {
 public:
  /// Takes ownership of the classifier (prime it and attach the org map
  /// before constructing).  Does not touch the network until start().
  explicit Server(core::IncrementalClassifier classifier,
                  ServerConfig config = {});

  /// Stream mode: serves (and subscribes to) a borrowed StreamEngine that
  /// the caller keeps feeding — the engine must outlive the server.
  explicit Server(stream::StreamEngine& engine, ServerConfig config = {});

  /// Joins everything; equivalent to request_stop() + wait().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread.  Throws ServeError when
  /// the address or port cannot be bound.
  void start();

  /// The actually bound port (resolves port 0); valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Asks the accept loop to drain and exit.  Async-signal-safe.
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// Blocks until the accept loop exited and every in-flight connection
  /// finished; writes the final snapshot when one is configured.
  void wait();

  [[nodiscard]] ServerStats stats() const;

 private:
  /// Per-connection protocol state: a SUBSCRIBE upgrades the connection to
  /// a push stream and `next_after` tracks the last event it has seen.
  struct ConnState {
    bool subscribed = false;
    std::uint64_t next_after = 0;
    /// The snapshot block of the SUBSCRIBE handshake, carried to the
    /// subscriber outbox instead of being pushed with a blocking send — a
    /// peer that never reads must not pin the pool worker.
    std::string pending_push;
  };

  void accept_loop();
  void handle_connection(int fd);
  /// Pushes pending events to every registered subscriber and reaps the
  /// dead ones.  Runs on the accept thread once per poll slice, so a
  /// subscribed connection costs no pool worker — with a small pool, a
  /// parked push stream must not starve request/response connections.
  void service_subscribers();
  /// One request line -> one response (possibly multi-line, e.g. the
  /// SUBSCRIBE snapshot); false closes the connection.
  [[nodiscard]] bool handle_command(const std::string& line,
                                    std::string& response, ConnState& state);
  struct Subscriber;
  /// Appends buffered events past state.next_after to the subscriber's
  /// outbox, up to the queue cap (falling back to a full snapshot on a
  /// trimmed gap).  Sets `lagged` when the outbox is full *and* the
  /// subscriber has also fallen off the engine's event ring — it can no
  /// longer be caught up.
  void queue_events(Subscriber& sub, bool& lagged);
  /// One non-blocking send of the subscriber's unsent outbox bytes; false
  /// on a dead socket.  Partial sends leave the remainder queued.
  [[nodiscard]] bool flush_outbox(Subscriber& sub);
  void record_query_latency(double microseconds);
  void write_snapshot_file(const std::string& path);

  core::IncrementalClassifier classifier_;
  stream::StreamEngine* engine_ = nullptr;  ///< non-null in stream mode
  ServerConfig config_;

  // Subscribed connections, handed off by handle_connection and serviced
  // by the accept thread (stream mode only).
  struct Subscriber {
    int fd = -1;
    ConnState state;
    /// Bytes queued but not yet accepted by the socket; `outbox_sent` is
    /// the already-sent prefix (compacted once it grows large).
    std::string outbox;
    std::size_t outbox_sent = 0;
  };
  std::mutex subscribers_mutex_;
  std::vector<Subscriber> subscribers_;

  mutable std::mutex classifier_mutex_;

  // Latency window: the last kLatencyWindow LABEL latencies, ring-buffered.
  static constexpr std::size_t kLatencyWindow = 4096;
  mutable std::mutex latency_mutex_;
  std::vector<double> latency_us_;
  std::size_t latency_next_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> subscribers_dropped_{0};

  std::chrono::steady_clock::time_point started_at_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread accept_thread_;
};

}  // namespace bgpintent::serve
