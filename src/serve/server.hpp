// Long-running query daemon over an IncrementalClassifier or a
// stream::StreamEngine — the shard-per-core epoll serve tier.
//
// Architecture (docs/SERVING.md):
//
//   * N shards, each one thread owning an edge-triggered epoll instance,
//     its own SO_REUSEPORT listener on the shared address, and a private
//     connection table — the kernel spreads accepts across shards and no
//     lock is shared on the accept or read path.  When SO_REUSEPORT is
//     unavailable, shard 0 owns the single listener and hands accepted
//     fds to the other shards round-robin over eventfd-signalled queues.
//   * Classification state is published RCU-style (serve/labels.hpp): a
//     warm LABEL query loads an atomic shared_ptr snapshot and does one
//     hash lookup — it never touches the classifier mutex.  INGEST (and
//     stream reclassification) build the next epoch copy-on-write and
//     publish it with a single pointer swap.
//   * Two wire protocols share the port: the line protocol of
//     serve/protocol.hpp (unchanged, first byte is printable ASCII) and
//     the length-prefixed binary protocol of serve/binary.hpp (first
//     byte 0xB6), with responses encoded into a per-connection arena
//     buffer that is reused across requests.
//   * Idle shards block in epoll_wait indefinitely: periodic snapshots
//     tick on a timerfd (armed only when configured), stop and stream
//     publish notifications arrive on per-shard eventfds, and the
//     loop_wakeups counter in STATS proves an idle server wakes ~never.
//
// Two backing modes share the command surface:
//   * classic (owned IncrementalClassifier): LABEL / INGEST / TOTALS /
//     STATS / SNAPSHOT; SUBSCRIBE answers ERR (no event stream exists);
//   * stream (borrowed stream::StreamEngine, `bgpintent stream --listen`):
//     the same verbs answer from the sliding window, SNAPSHOT answers ERR
//     (stream durability lives in the journal — docs/STREAMING.md §6),
//     and SUBSCRIBE turns the connection into a push stream of
//     label-change EVENT lines with delta/snapshot resumption.  The
//     engine's publish hook wakes every shard, so events reach parked
//     subscribers without polling.
//
// Robustness guarantees (unchanged from the poll-slice daemon):
//   * per-connection idle timeout (ServerConfig::read_timeout_ms),
//     enforced by deadline scans on the shard loop — a dead peer cannot
//     pin a shard; subscribed push streams are exempt;
//   * max-line / max-frame guards — a garbage peer cannot balloon memory,
//     and a lying binary length field is rejected before any body byte
//     is buffered;
//   * bounded subscriber outboxes flushed by EPOLLOUT readiness — a
//     stalled subscriber cannot block its shard, and one that stays full
//     past the engine's event ring is disconnected with a final
//     `ERR lagged` (counted as subscribers_dropped in STATS);
//   * response-backlog backpressure on request/response connections — a
//     peer that pipelines requests without reading answers is paused
//     (its socket stops being drained, so TCP flow control pushes back)
//     once unsent responses reach max_response_backlog_bytes, instead of
//     growing the outbox without bound; EPOLLOUT progress resumes it;
//   * request_stop() is async-signal-safe (atomic store + eventfd
//     writes), so SIGINT/SIGTERM handlers can trigger a graceful drain:
//     stop accepting, flush pending responses, write a final snapshot.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/incremental.hpp"
#include "serve/labels.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"
#include "stream/engine.hpp"

namespace bgpintent::serve {

struct ServerConfig {
  /// IPv4 address to bind; loopback by default (the protocol has no auth).
  std::string listen_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (query it back via port()).
  std::uint16_t port = 0;
  /// Event-loop shards (0 = one per core).  `threads` below is honored as
  /// a legacy alias when `shards` is 0 — the old thread-pool knob maps
  /// onto the shard count, which plays the same capacity role.
  unsigned shards = 0;
  /// Legacy knob (pre-shard daemon): connection worker threads.
  unsigned threads = 0;
  /// Close a connection after this long without a complete request line.
  int read_timeout_ms = 30000;
  /// Write a snapshot to `snapshot_path` every this many seconds (0 = only
  /// via the SNAPSHOT command and on graceful shutdown).
  unsigned snapshot_interval_s = 0;
  /// Snapshot destination; empty disables automatic snapshots.
  std::string snapshot_path;
  /// On-disk format for every snapshot this server writes (the SNAPSHOT
  /// command, the periodic timer, and the final shutdown snapshot).  kV2
  /// stays the default so snapshots remain exchangeable with older
  /// builds; kV3 produces the columnar image --snapshot-mmap restarts
  /// from.
  SnapshotFormat snapshot_format = SnapshotFormat::kV2;
  /// Per-subscriber outbox cap: once a subscriber's unsent bytes reach
  /// this, no further events are queued for it (backpressure falls to the
  /// engine's event ring); a capped subscriber that also falls off the
  /// ring is dropped with `ERR lagged`.
  std::size_t max_subscriber_queue_bytes = 1 << 20;
  /// Per-connection response-backlog cap for plain request/response
  /// connections: once unsent response bytes reach this, the server stops
  /// parsing further requests from the connection (and stops reading its
  /// socket, so TCP flow control backpressures the peer) until the
  /// backlog drains below the cap.  A single oversized response (e.g. a
  /// large BATCH-LABEL answer) may overshoot transiently.
  std::size_t max_response_backlog_bytes = 4 << 20;
};

/// Counters reported by STATS (and readable in-process).
struct ServerStats {
  double uptime_seconds = 0.0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t queries_served = 0;  ///< LABEL lookups (batch items count)
  std::uint64_t batch_queries = 0;   ///< binary BATCH-LABEL frames answered
  std::uint64_t entries_ingested = 0;
  std::uint64_t dirty_alphas = 0;
  /// Cumulative decode outcome across every ingest path (MRT priming,
  /// INGEST batches, restored snapshots) — docs/ROBUSTNESS.md.
  std::uint64_t decode_records_ok = 0;
  std::uint64_t decode_records_skipped = 0;
  double p50_query_us = 0.0;  ///< over a window of recent LABEL queries
  double p99_query_us = 0.0;
  /// RCU label epochs published so far (serve/labels.hpp version).
  std::uint64_t label_epochs = 0;
  /// epoll_wait returns summed over every shard — the idle-burn
  /// regression counter: an idle server must keep this near zero.
  std::uint64_t loop_wakeups = 0;
  std::uint64_t binary_connections = 0;  ///< connections that sent the magic
  // Stream-mode counters (docs/STREAMING.md); zero in classic mode.
  std::uint64_t updates_ok = 0;
  std::uint64_t updates_errors = 0;
  std::uint64_t window_epochs = 0;
  std::uint64_t reclassified_communities = 0;
  std::uint64_t subscribers_dropped = 0;  ///< laggards closed with ERR lagged
  // Durability counters (docs/STREAMING.md §6); zero without --journal.
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t recovered_events = 0;
  std::uint64_t torn_tail_truncated = 0;
};

class Server {
 public:
  /// Takes ownership of the classifier (prime it and attach the org map
  /// before constructing).  Does not touch the network until start().
  explicit Server(core::IncrementalClassifier classifier,
                  ServerConfig config = {});

  /// Stream mode: serves (and subscribes to) a borrowed StreamEngine that
  /// the caller keeps feeding — the engine must outlive the server.
  explicit Server(stream::StreamEngine& engine, ServerConfig config = {});

  /// Joins everything; equivalent to request_stop() + wait().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the shard listeners, publishes the initial label epoch, and
  /// spawns the shard threads.  Throws ServeError when the address or
  /// port cannot be bound.
  void start();

  /// The actually bound port (resolves port 0); valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Asks every shard to drain and exit.  Async-signal-safe: one atomic
  /// store plus eventfd writes.
  void request_stop() noexcept;

  /// Blocks until every shard exited and every connection is closed;
  /// writes the final snapshot when one is configured.
  void wait();

  [[nodiscard]] ServerStats stats() const;

 private:
  /// Wire protocol of one connection, decided by its first byte.
  enum class ConnMode : std::uint8_t { kUndecided, kLine, kBinary };

  /// One connection, owned by exactly one shard (no cross-shard access).
  struct Conn {
    int fd = -1;
    /// Generation tag carried in epoll_event.data (fd | gen<<32): a close
    /// during an epoll batch can recycle the fd number for a fresh accept
    /// within the same batch, and a still-queued stale event (EPOLLHUP for
    /// the old connection) must not be applied to the new one.  Never 0 —
    /// 0 is reserved for the listener/eventfd/timerfd registrations.
    std::uint32_t gen = 0;
    ConnMode mode = ConnMode::kUndecided;
    bool hello_done = false;  ///< binary: handshake frame validated
    /// SUBSCRIBE upgraded this connection to a push stream; `next_after`
    /// is the last event sequence it has seen.
    bool subscribed = false;
    std::uint64_t next_after = 0;
    /// Close once `out` drains (framed protocol errors, QUIT, timeouts).
    bool close_after_flush = false;
    bool want_epollout = false;  ///< EPOLLOUT currently registered
    std::string in;   ///< unparsed request bytes
    /// Response arena: encoded replies append here and `out_sent` marks
    /// the flushed prefix; the buffer is compacted, never reallocated per
    /// request, so warm responses allocate nothing.
    std::string out;
    std::size_t out_sent = 0;
    std::chrono::steady_clock::time_point last_activity;
  };

  /// One event-loop shard: thread + epoll + listener + connection table.
  struct Shard {
    std::size_t index = 0;
    int epoll_fd = -1;
    /// Own SO_REUSEPORT listener, or -1 when running in fd-handoff
    /// fallback mode (only shard 0 listens then).
    int listen_fd = -1;
    /// Wake channel: stop requests, stream publish notifications, and
    /// handed-off fds all signal this.
    int event_fd = -1;
    /// Periodic snapshot tick (shard 0, classic mode, interval set);
    /// -1 — and the loop blocks forever — otherwise.
    int timer_fd = -1;
    std::thread thread;
    std::unordered_map<int, Conn> conns;
    /// Next Conn::gen to hand out; skips 0 (reserved for non-conn fds).
    std::uint32_t next_gen = 1;
    /// Fds accepted by shard 0 for this shard (fallback mode only).
    std::mutex handoff_mutex;
    std::vector<int> handoff;
    /// epoll_wait returns on this shard (idle-burn regression counter).
    std::atomic<std::uint64_t> wakeups{0};
    /// Recent LABEL latencies, ring-buffered per shard.
    std::vector<double> latency_us;
    std::size_t latency_next = 0;
    mutable std::mutex latency_mutex;
    /// Scratch for BATCH-LABEL answers, reused across requests.
    std::vector<dict::Intent> batch_scratch;
  };

  void shard_loop(Shard& shard);
  void accept_ready(Shard& shard);
  void adopt_connection(Shard& shard, int fd);
  /// Drains readable bytes and serves every complete request buffered;
  /// returns false when the connection must close now.
  [[nodiscard]] bool conn_readable(Shard& shard, Conn& conn);
  [[nodiscard]] bool process_buffered(Shard& shard, Conn& conn);
  [[nodiscard]] bool process_line_input(Shard& shard, Conn& conn);
  [[nodiscard]] bool process_binary_input(Shard& shard, Conn& conn);
  /// One request line -> one response (possibly multi-line, e.g. the
  /// SUBSCRIBE snapshot); false closes the connection after the flush.
  [[nodiscard]] bool handle_command(Shard& shard, const std::string& line,
                                    Conn& conn);
  void dispatch_binary(Shard& shard, Conn& conn, std::uint8_t op,
                       std::span<const unsigned char> body);
  /// The RCU fast path: loads the current epoch, refreshing it first when
  /// the stream engine published past it (or holds unsettled dirty
  /// state).  Lock-free whenever the snapshot is warm.
  [[nodiscard]] std::shared_ptr<const LabelTable> query_snapshot();
  [[nodiscard]] dict::Intent query_label(bgp::Community community);
  /// Non-blocking flush of conn.out; updates EPOLLOUT registration.
  /// Returns false on a dead socket.
  [[nodiscard]] bool flush_conn(Shard& shard, Conn& conn);
  void close_conn(Shard& shard, int fd);
  /// Appends buffered events past conn.next_after to the outbox up to the
  /// queue cap (snapshot resync on a trimmed gap); sets `lagged` when the
  /// peer can no longer be caught up.
  void queue_events(Conn& conn, bool& lagged);
  /// Pushes pending events to this shard's subscribers (stream mode, on
  /// publish-hook wakeups) and reaps the dead ones.
  void service_subscribers(Shard& shard);
  /// Marks a subscriber uncatchable: truncates its unsent backlog at the
  /// end of the line currently in flight (a partial send can leave the
  /// peer holding half an EVENT line), appends the final `ERR lagged` at
  /// that line boundary, and schedules the close once it drains.
  void drop_lagged(Conn& conn);
  /// Closes connections idle past read_timeout_ms; returns the epoll
  /// timeout (ms) until the next deadline, or -1 to block forever.
  [[nodiscard]] int sweep_idle(Shard& shard);
  void notify_all_shards() noexcept;

  // --- label epochs (RCU write side) ---
  /// Classic mode: settles dirty alphas and publishes the next epoch.
  /// Caller holds classifier_mutex_.
  void publish_classic_epoch_locked();
  /// Stream mode: folds engine deltas (or a full snapshot on a gap) into
  /// a fresh epoch when the current one is stale.
  void refresh_stream_epoch();

  void record_query_latency(Shard& shard, double microseconds);
  void write_snapshot_file(const std::string& path);

  core::IncrementalClassifier classifier_;
  stream::StreamEngine* engine_ = nullptr;  ///< non-null in stream mode
  ServerConfig config_;

  /// RCU label publication point shared by every shard (serve/labels.hpp).
  LabelView labels_;
  /// Writer-side ordering for refresh_stream_epoch (stream mode);
  /// classic-mode epochs are ordered by classifier_mutex_.
  std::mutex refresh_mutex_;

  mutable std::mutex classifier_mutex_;

  static constexpr std::size_t kLatencyWindow = 4096;

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  /// Classic mode only: true while the published epoch predates dirty
  /// classifier state handed to the constructor (the first query settles
  /// it).  INGEST publishes eagerly, so this never re-arms after start().
  std::atomic<bool> classic_stale_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> batch_queries_{0};
  std::atomic<std::uint64_t> binary_connections_{0};
  std::atomic<std::uint64_t> subscribers_dropped_{0};

  std::chrono::steady_clock::time_point started_at_;
  std::uint16_t bound_port_ = 0;
  bool reuseport_ = true;  ///< false: fd-handoff fallback
  std::size_t handoff_next_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace bgpintent::serve
