// RCU-style label snapshots for the serve tier's lock-free query path.
//
// The seed daemon took the classifier mutex on every LABEL query, so warm
// reads serialized behind INGEST reclassification.  Here the server keeps
// an immutable LabelTable behind an atomic shared_ptr: readers load the
// pointer (acquire) and do a plain hash lookup — no lock, no refcount
// contention beyond the shared_ptr's, and a dropped epoch is reclaimed by
// the last reader that holds it (classic RCU grace period, for free).
// Writers build the next epoch off to the side — copy-on-write from the
// current table plus the settled deltas — and publish with one pointer
// swap (release).  A reader therefore sees either the old or the new
// epoch in full, never a torn mix; tests/serve/server_test.cpp pins this
// under TSan.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>

#include "bgp/community.hpp"
#include "dict/intent.hpp"

namespace bgpintent::serve {

/// One immutable epoch of the community -> intent map, keyed by the
/// community's 32-bit wire form.  Absence means kUnclassified (the
/// classifier returns kUnclassified for unknown communities too, so a
/// miss in the snapshot is exact, not approximate).
///
/// Two storage shapes share this struct.  The common one is the owned
/// hash map.  The zero-copy one — the initial epoch of a server started
/// with --snapshot-mmap — is a pair of sorted parallel columns borrowed
/// straight from a mapped v3 snapshot (serve::MappedSnapshot), with
/// `backing` pinning the mapping; `labels` is empty then and lookups
/// binary-search the columns, so the first query after restart touches
/// only the pages it needs.
struct LabelTable {
  std::unordered_map<std::uint32_t, dict::Intent> labels;
  /// Columnar backing: sorted community wires and their intents, one slot
  /// per known community.  Only read when `backing` is set.
  std::span<const std::uint32_t> wires;
  std::span<const dict::Intent> intents;
  std::shared_ptr<const void> backing;
  /// Monotonic epoch counter; exported via STATS as label_epochs.
  std::uint64_t version = 0;
  /// Stream mode: last StreamEngine sequence folded into this table.
  /// Shards compare against StreamEngine::published_seq() to detect a
  /// stale snapshot without taking the engine mutex.
  std::uint64_t as_of_seq = 0;
};

/// The atomic publication point.  All shards share one LabelView.
class LabelView {
 public:
  LabelView() : current_(std::make_shared<const LabelTable>()) {}

  /// Lock-free reader fast path.
  [[nodiscard]] std::shared_ptr<const LabelTable> load() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Publishes the next epoch.  The caller must already hold whatever
  /// writer-side ordering it needs (the server's classifier/refresh
  /// mutex); LabelView itself only guarantees the swap is atomic.
  void publish(std::shared_ptr<const LabelTable> next) noexcept {
    current_.store(std::move(next), std::memory_order_release);
  }

  /// Convenience for writers: copy-on-write clone of the current epoch
  /// with the version already bumped.  A columnar epoch is materialized
  /// into the hash map here — the first INGEST pays the decode the mmap
  /// restart skipped, and the new epoch no longer pins the mapping.
  [[nodiscard]] std::shared_ptr<LabelTable> clone_for_update() const {
    auto cur = load();
    auto next = std::make_shared<LabelTable>();
    next->version = cur->version + 1;
    next->as_of_seq = cur->as_of_seq;
    if (cur->backing != nullptr) {
      next->labels.reserve(cur->wires.size());
      for (std::size_t i = 0; i < cur->wires.size(); ++i)
        next->labels.emplace(cur->wires[i], cur->intents[i]);
    } else {
      next->labels = cur->labels;
    }
    return next;
  }

 private:
  std::atomic<std::shared_ptr<const LabelTable>> current_;
};

/// Looks up one community in an epoch; miss == kUnclassified.
[[nodiscard]] inline dict::Intent lookup(const LabelTable& table,
                                         bgp::Community community) noexcept {
  if (table.backing != nullptr) {
    const auto it = std::lower_bound(table.wires.begin(), table.wires.end(),
                                     community.wire());
    return it == table.wires.end() || *it != community.wire()
               ? dict::Intent::kUnclassified
               : table.intents[static_cast<std::size_t>(
                     it - table.wires.begin())];
  }
  const auto it = table.labels.find(community.wire());
  return it == table.labels.end() ? dict::Intent::kUnclassified : it->second;
}

}  // namespace bgpintent::serve
