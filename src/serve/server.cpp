#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "serve/binary.hpp"
#include "serve/snapshot.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace bgpintent::serve {

namespace {

/// One epoll_wait batch; shards loop until EAGAIN anyway (edge-triggered),
/// so the size only bounds per-wakeup work, not correctness.
constexpr int kEpollBatch = 64;
/// Events pulled from the engine ring per queue_events iteration.
constexpr std::size_t kEventBatch = 1024;
/// Flushed-prefix size that triggers outbox compaction.
constexpr std::size_t kCompactThreshold = 64 * 1024;

/// epoll_event.data payload: fd in the low half, the connection
/// generation in the high half (0 for listener/eventfd/timerfd).  The
/// generation guards against an fd number closed and recycled within a
/// single epoll_wait batch — see Server::Conn::gen.
[[nodiscard]] std::uint64_t epoll_tag(int fd, std::uint32_t gen = 0) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint32_t>(fd);
}

void wake_eventfd(int fd) noexcept {
  if (fd < 0) return;
  const std::uint64_t one = 1;
  // eventfd writes only block at counter overflow, which 1-per-wake never
  // reaches; EAGAIN on a nonblocking fd means a wake is already pending.
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof one);
}

[[nodiscard]] std::string label_name(core::Intent label) {
  return std::string(dict::to_string(label));
}

/// "DATA ...\nEND snapshot seq=N" (newline-separated, no trailing newline):
/// the full-snapshot block of the SUBSCRIBE protocol (docs/STREAMING.md).
[[nodiscard]] std::string snapshot_block(stream::StreamEngine& engine,
                                         std::uint64_t& seq) {
  std::string block;
  for (const auto& [community, label] : engine.label_snapshot(seq)) {
    block += util::format("DATA community=%s label=%s\n",
                          community.to_string().c_str(),
                          label_name(label).c_str());
  }
  block += util::format("END snapshot seq=%llu",
                        static_cast<unsigned long long>(seq));
  return block;
}

[[nodiscard]] std::string format_event(const stream::Event& event) {
  return util::format(
      "EVENT seq=%llu community=%s old=%s new=%s epoch=%llu",
      static_cast<unsigned long long>(event.seq),
      event.change.community.to_string().c_str(),
      label_name(event.change.previous).c_str(),
      label_name(event.change.current).c_str(),
      static_cast<unsigned long long>(event.change.epoch));
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

[[nodiscard]] int make_listener(const std::string& address,
                                std::uint16_t port, bool reuseport,
                                std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0)
    throw ServeError(
        util::format("cannot create socket: %s", std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    ::close(fd);
    return -1;  // caller falls back to fd handoff
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw ServeError(util::format("'%s' is not a valid IPv4 listen address",
                                  address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 256) != 0) {
    const int error = errno;
    ::close(fd);
    if (reuseport && port != 0) return -1;  // secondary listener: fall back
    throw ServeError(util::format("cannot listen on %s:%u: %s",
                                  address.c_str(), port,
                                  std::strerror(error)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

Server::Server(core::IncrementalClassifier classifier, ServerConfig config)
    : classifier_(std::move(classifier)), config_(std::move(config)) {}

Server::Server(stream::StreamEngine& engine, ServerConfig config)
    : engine_(&engine), config_(std::move(config)) {}

Server::~Server() {
  request_stop();
  wait();
}

void Server::start() {
  unsigned n = config_.shards != 0 ? config_.shards : config_.threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  n = std::min(n, 64u);

  shards_.clear();
  shards_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shards_.push_back(std::move(shard));
  }

  // Shard 0 binds first (resolving port 0), the rest join it on the same
  // port via SO_REUSEPORT so the kernel spreads accepts with no shared
  // lock.  Any failure to stand up a secondary listener demotes the whole
  // server to fd-handoff mode: shard 0 accepts and round-robins fds.
  reuseport_ = true;
  shards_[0]->listen_fd = make_listener(config_.listen_address, config_.port,
                                        /*reuseport=*/n > 1, bound_port_);
  if (shards_[0]->listen_fd < 0) {
    reuseport_ = false;
    shards_[0]->listen_fd = make_listener(config_.listen_address, config_.port,
                                          /*reuseport=*/false, bound_port_);
  }
  if (reuseport_ && n > 1) {
    for (unsigned i = 1; i < n; ++i) {
      std::uint16_t ignored = 0;
      shards_[i]->listen_fd = make_listener(
          config_.listen_address, bound_port_, /*reuseport=*/true, ignored);
      if (shards_[i]->listen_fd < 0) {
        reuseport_ = false;
        for (unsigned j = 1; j <= i; ++j) close_quietly(shards_[j]->listen_fd);
        break;
      }
    }
  }

  for (auto& shard : shards_) {
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->event_fd < 0)
      throw ServeError(util::format("cannot create event loop: %s",
                                    std::strerror(errno)));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = epoll_tag(shard->event_fd);
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev);
    if (shard->listen_fd >= 0) {
      ev.events = EPOLLIN;
      ev.data.u64 = epoll_tag(shard->listen_fd);
      ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->listen_fd, &ev);
    }
  }

  // Periodic snapshots tick on a timerfd owned by shard 0 — armed only
  // when actually configured, so an idle server blocks in epoll_wait
  // forever instead of polling on a slice.
  if (engine_ == nullptr && config_.snapshot_interval_s > 0 &&
      !config_.snapshot_path.empty()) {
    Shard& shard = *shards_[0];
    shard.timer_fd = ::timerfd_create(CLOCK_MONOTONIC,
                                      TFD_NONBLOCK | TFD_CLOEXEC);
    if (shard.timer_fd >= 0) {
      itimerspec spec{};
      spec.it_interval.tv_sec = config_.snapshot_interval_s;
      spec.it_value.tv_sec = config_.snapshot_interval_s;
      ::timerfd_settime(shard.timer_fd, 0, &spec, nullptr);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = epoll_tag(shard.timer_fd);
      ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, shard.timer_fd, &ev);
    }
  }

  // The initial label epoch.  Built from the classifier's *cached* labels
  // without reclassifying — preloaded-but-dirty state must round-trip
  // through SNAPSHOT byte-identically — so the first query settles any
  // leftover dirty alphas lazily (classic_stale_).
  if (engine_ == nullptr) {
    const std::lock_guard<std::mutex> lock(classifier_mutex_);
    auto table = std::make_shared<LabelTable>();
    table->version = 1;
    if (const auto view = classifier_.view()) {
      // Borrowed columnar state (--snapshot-mmap): the snapshot's serve
      // columns ARE the epoch — no decode, no hashing, pages fault in as
      // queries touch them.  The view handle keeps the mapping alive even
      // if a later INGEST detaches the classifier.
      table->wires = view->columns().serve_wires;
      table->intents = view->columns().serve_intents;
      table->backing = view;
    } else {
      for (const auto& [community, intent] : classifier_.label_snapshot())
        table->labels.emplace(community.wire(), intent);
    }
    labels_.publish(std::move(table));
    classic_stale_.store(classifier_.dirty_alpha_count() > 0,
                         std::memory_order_release);
  } else {
    auto table = std::make_shared<LabelTable>();
    table->version = 1;
    std::uint64_t as_of = 0;
    for (const auto& [community, intent] : engine_->label_snapshot(as_of))
      table->labels.emplace(community.wire(), intent);
    table->as_of_seq = as_of;
    labels_.publish(std::move(table));
  }

  started_at_ = std::chrono::steady_clock::now();
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  if (engine_ != nullptr)
    engine_->set_publish_hook([this] { notify_all_shards(); });
  for (auto& shard : shards_)
    shard->thread = std::thread([this, s = shard.get()] { shard_loop(*s); });
}

void Server::request_stop() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  notify_all_shards();
}

void Server::notify_all_shards() noexcept {
  for (const auto& shard : shards_) wake_eventfd(shard->event_fd);
}

void Server::wait() {
  for (auto& shard : shards_)
    if (shard->thread.joinable()) shard->thread.join();
  if (engine_ != nullptr && running_.load(std::memory_order_acquire))
    engine_->set_publish_hook(nullptr);
  for (auto& shard : shards_) {
    close_quietly(shard->listen_fd);
    close_quietly(shard->timer_fd);
    close_quietly(shard->event_fd);
    close_quietly(shard->epoll_fd);
  }
  if (running_.exchange(false, std::memory_order_acq_rel) &&
      engine_ == nullptr && !config_.snapshot_path.empty()) {
    try {
      write_snapshot_file(config_.snapshot_path);
    } catch (const std::exception& error) {
      util::log_warn(util::format("final snapshot failed: %s", error.what()));
    }
  }
}

void Server::shard_loop(Shard& shard) {
  epoll_event events[kEpollBatch];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int timeout_ms = sweep_idle(shard);
    const int ready =
        ::epoll_wait(shard.epoll_fd, events, kEpollBatch, timeout_ms);
    shard.wakeups.fetch_add(1, std::memory_order_relaxed);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const int fd = static_cast<int>(static_cast<std::uint32_t>(tag));
      if (fd == shard.listen_fd) {
        accept_ready(shard);
        continue;
      }
      if (fd == shard.event_fd) {
        std::uint64_t drained = 0;
        while (::read(shard.event_fd, &drained, sizeof drained) > 0) {
        }
        if (!reuseport_) {
          std::vector<int> adopted;
          {
            const std::lock_guard<std::mutex> lock(shard.handoff_mutex);
            adopted.swap(shard.handoff);
          }
          for (const int handed : adopted) adopt_connection(shard, handed);
        }
        if (engine_ != nullptr) service_subscribers(shard);
        continue;
      }
      if (fd == shard.timer_fd) {
        std::uint64_t expirations = 0;
        while (::read(shard.timer_fd, &expirations, sizeof expirations) > 0) {
        }
        try {
          write_snapshot_file(config_.snapshot_path);
        } catch (const std::exception& error) {
          util::log_warn(
              util::format("periodic snapshot failed: %s", error.what()));
        }
        continue;
      }
      const auto it = shard.conns.find(fd);
      if (it == shard.conns.end() ||
          it->second.gen != static_cast<std::uint32_t>(tag >> 32))
        continue;  // stale event for a recycled fd number
      Conn& conn = it->second;
      bool ok = (events[i].events & (EPOLLHUP | EPOLLERR)) == 0;
      if (ok && (events[i].events & EPOLLIN) != 0)
        ok = conn_readable(shard, conn);
      if (ok && (events[i].events & EPOLLOUT) != 0) {
        ok = flush_conn(shard, conn);
        // A subscriber that just regained socket room refills its outbox
        // from the engine ring — this is how a slow reader drains the
        // full event history chunk by chunk.
        if (ok && conn.subscribed) {
          bool lagged = false;
          queue_events(conn, lagged);
          if (lagged) drop_lagged(conn);
          ok = flush_conn(shard, conn);
        } else if (ok && !conn.close_after_flush &&
                   conn.out.size() - conn.out_sent <
                       config_.max_response_backlog_bytes) {
          // Backlog drained below the cap: resume the paused request
          // stream — buffered requests first, then whatever stayed
          // queued in the kernel while reads were suspended.
          ok = conn_readable(shard, conn);
        }
      }
      if (ok && conn.close_after_flush && conn.out_sent >= conn.out.size())
        ok = false;
      if (!ok) close_conn(shard, fd);
    }
  }
  // Drain: flush whatever is already queued (best effort, non-blocking)
  // and close.  Unreached subscriber events stay recoverable via
  // SUBSCRIBE from=<last seen seq>.
  for (auto& [fd, conn] : shard.conns) {
    (void)flush_conn(shard, conn);
    ::close(fd);
  }
  shard.conns.clear();
  // Fallback mode: fds shard 0 dealt to this shard but that were never
  // adopted (the stop request can beat the eventfd drain) must not leak.
  {
    const std::lock_guard<std::mutex> lock(shard.handoff_mutex);
    for (const int fd : shard.handoff) ::close(fd);
    shard.handoff.clear();
  }
}

void Server::accept_ready(Shard& shard) {
  for (;;) {
    const int fd = ::accept4(shard.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: accepted everything pending
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (reuseport_ || shards_.size() == 1) {
      adopt_connection(shard, fd);
      continue;
    }
    // Fallback mode: shard 0 owns the only listener and deals fds out
    // round-robin (including to itself).
    const std::size_t target = handoff_next_++ % shards_.size();
    if (target == shard.index) {
      adopt_connection(shard, fd);
    } else {
      Shard& other = *shards_[target];
      {
        const std::lock_guard<std::mutex> lock(other.handoff_mutex);
        other.handoff.push_back(fd);
      }
      wake_eventfd(other.event_fd);
    }
  }
}

void Server::adopt_connection(Shard& shard, int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  const std::uint32_t gen = shard.next_gen++;
  if (shard.next_gen == 0) shard.next_gen = 1;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = epoll_tag(fd, gen);
  if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  Conn conn;
  conn.fd = fd;
  conn.gen = gen;
  conn.last_activity = std::chrono::steady_clock::now();
  shard.conns.emplace(fd, std::move(conn));
}

bool Server::conn_readable(Shard& shard, Conn& conn) {
  bool peer_closed = false;
  for (;;) {
    // Drain the socket — unless the peer's unread responses sit at the
    // backlog cap: then stop pulling requests off the wire, let the
    // kernel receive buffer fill, and TCP flow control pushes back on
    // the sender.
    bool paused = false;
    while (!peer_closed) {
      if (!conn.subscribed &&
          conn.out.size() - conn.out_sent >=
              config_.max_response_backlog_bytes) {
        paused = true;
        break;
      }
      char chunk[16384];
      const ssize_t got = ::recv(conn.fd, chunk, sizeof chunk, 0);
      if (got > 0) {
        conn.in.append(chunk, static_cast<std::size_t>(got));
        conn.last_activity = std::chrono::steady_clock::now();
        continue;
      }
      if (got == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    const std::size_t in_before = conn.in.size();
    if (!process_buffered(shard, conn)) return false;
    if (!flush_conn(shard, conn)) return false;
    if (peer_closed || conn.close_after_flush) break;
    // A fully successful flush can reopen the response window while
    // requests are still buffered (or still queued in the kernel during
    // a pause): keep draining and processing as long as progress is
    // made.  When the backlog stays at the cap the pause holds, and
    // EPOLLOUT progress resumes this loop instead (shard_loop).
    if (conn.out.size() - conn.out_sent >=
        config_.max_response_backlog_bytes)
      break;
    if (conn.in.size() >= in_before && !paused) break;  // no progress
  }
  // EOF: answer what was pipelined before the close, then drop.
  return !peer_closed;
}

bool Server::process_buffered(Shard& shard, Conn& conn) {
  if (conn.mode == ConnMode::kUndecided) {
    if (conn.in.empty()) return true;
    if (static_cast<unsigned char>(conn.in.front()) == binary::kMagic[0]) {
      conn.mode = ConnMode::kBinary;
      binary_connections_.fetch_add(1, std::memory_order_relaxed);
    } else {
      conn.mode = ConnMode::kLine;
    }
  }
  if (conn.subscribed) {
    // Push-only after SUBSCRIBE: inbound bytes are drained, not parsed.
    conn.in.clear();
    return true;
  }
  return conn.mode == ConnMode::kLine ? process_line_input(shard, conn)
                                      : process_binary_input(shard, conn);
}

bool Server::process_line_input(Shard& shard, Conn& conn) {
  std::size_t start = 0;
  while (!conn.close_after_flush) {
    if (conn.out.size() - conn.out_sent >=
        config_.max_response_backlog_bytes)
      break;  // paused: queued responses must drain before more are made
    const std::size_t newline = conn.in.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = conn.in.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!handle_command(shard, line, conn)) conn.close_after_flush = true;
    if (conn.subscribed) {
      // The rest of the buffer belongs to a push stream now: discard.
      start = conn.in.size();
      break;
    }
  }
  conn.in.erase(0, start);
  // The overlong-line guard applies only to a single unfinished line; a
  // backlog-paused connection may legitimately hold many complete lines.
  const bool paused =
      conn.out.size() - conn.out_sent >= config_.max_response_backlog_bytes;
  if (!conn.subscribed && !conn.close_after_flush && !paused &&
      conn.in.size() > kMaxLineBytes) {
    conn.out.append("ERR line too long\n");
    conn.close_after_flush = true;
    conn.in.clear();
  }
  return true;
}

bool Server::process_binary_input(Shard& shard, Conn& conn) {
  namespace bin = binary;
  std::size_t off = 0;
  if (!conn.hello_done) {
    const std::size_t have = std::min(conn.in.size(), sizeof bin::kMagic);
    if (std::memcmp(conn.in.data(), bin::kMagic, have) != 0) {
      bin::encode_err(conn.out, bin::ErrCode::kBadMagic, "bad magic");
      conn.close_after_flush = true;
      conn.in.clear();
      return true;
    }
    if (conn.in.size() < bin::kHelloBytes) return true;
    const std::uint16_t version = bin::get_u16(
        reinterpret_cast<const unsigned char*>(conn.in.data()) + 4);
    if (version != bin::kVersion) {
      bin::encode_err(
          conn.out, bin::ErrCode::kVersionSkew,
          util::format("server speaks version %u",
                       static_cast<unsigned>(bin::kVersion)));
      conn.close_after_flush = true;
      conn.in.clear();
      return true;
    }
    bin::encode_hello_ok(conn.out);
    conn.hello_done = true;
    off = bin::kHelloBytes;
  }
  while (!conn.close_after_flush) {
    if (conn.out.size() - conn.out_sent >=
        config_.max_response_backlog_bytes)
      break;  // paused: queued responses must drain before more are made
    const std::span<const unsigned char> rest(
        reinterpret_cast<const unsigned char*>(conn.in.data()) + off,
        conn.in.size() - off);
    bin::Frame frame;
    const bin::ParseResult result = bin::parse_frame(rest, frame);
    if (result == bin::ParseResult::kNeedMore) break;
    if (result == bin::ParseResult::kOversized) {
      bin::encode_err(conn.out, bin::ErrCode::kOversized,
                      "frame exceeds the payload limit");
      conn.close_after_flush = true;
      off = conn.in.size();
      break;
    }
    if (result == bin::ParseResult::kMalformed) {
      bin::encode_err(conn.out, bin::ErrCode::kMalformed, "empty frame");
      conn.close_after_flush = true;
      off = conn.in.size();
      break;
    }
    dispatch_binary(shard, conn, frame.tag, frame.body);
    off += frame.consumed;
  }
  conn.in.erase(0, off);
  return true;
}

void Server::dispatch_binary(Shard& shard, Conn& conn, std::uint8_t op,
                             std::span<const unsigned char> body) {
  namespace bin = binary;
  switch (static_cast<bin::Op>(op)) {
    case bin::Op::kLabel: {
      if (body.size() != 4) break;
      const auto begin = std::chrono::steady_clock::now();
      const core::Intent label =
          query_label(bgp::Community::from_wire(bin::get_u32(body.data())));
      const std::chrono::duration<double, std::micro> elapsed =
          std::chrono::steady_clock::now() - begin;
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      record_query_latency(shard, elapsed.count());
      bin::encode_label_ok(conn.out, label);
      return;
    }
    case bin::Op::kBatchLabel: {
      if (body.size() < 4) break;
      const std::uint32_t count = bin::get_u32(body.data());
      if (body.size() != 4 + 4 * static_cast<std::size_t>(count)) break;
      const auto begin = std::chrono::steady_clock::now();
      const auto snapshot = query_snapshot();
      shard.batch_scratch.clear();
      shard.batch_scratch.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const bgp::Community community =
            bgp::Community::from_wire(bin::get_u32(body.data() + 4 + 4 * i));
        shard.batch_scratch.push_back(lookup(*snapshot, community));
      }
      const std::chrono::duration<double, std::micro> elapsed =
          std::chrono::steady_clock::now() - begin;
      queries_served_.fetch_add(count, std::memory_order_relaxed);
      batch_queries_.fetch_add(1, std::memory_order_relaxed);
      record_query_latency(shard, elapsed.count());
      bin::encode_batch_label_ok(conn.out, shard.batch_scratch);
      return;
    }
    case bin::Op::kStats: {
      if (!body.empty()) break;
      const ServerStats s = stats();
      bin::StatsPayload payload;
      payload.connections = s.connections_accepted;
      payload.queries = s.queries_served;
      payload.batch_queries = s.batch_queries;
      payload.entries = s.entries_ingested;
      payload.label_epochs = s.label_epochs;
      payload.p50_us = s.p50_query_us;
      payload.p99_us = s.p99_query_us;
      bin::encode_stats_ok(conn.out, payload);
      return;
    }
    case bin::Op::kHello:
      bin::encode_err(conn.out, bin::ErrCode::kBadOpcode,
                      "HELLO is response-only");
      conn.close_after_flush = true;
      return;
    default:
      bin::encode_err(conn.out, bin::ErrCode::kBadOpcode, "unknown opcode");
      conn.close_after_flush = true;
      return;
  }
  // A frame whose body does not match its opcode desynchronizes the
  // stream permanently: answer once, then close.
  bin::encode_err(conn.out, bin::ErrCode::kMalformed, "malformed request");
  conn.close_after_flush = true;
}

std::shared_ptr<const LabelTable> Server::query_snapshot() {
  if (engine_ != nullptr) {
    // Unsettled window state could change any answer: settle it (one
    // engine-mutex pass that publishes the resulting events), then fold
    // the events into a fresh epoch.  Warm path — no dirty state, no new
    // events — touches no lock at all.
    if (engine_->has_pending_dirty()) engine_->reclassify();
    auto snapshot = labels_.load();
    if (snapshot->as_of_seq < engine_->published_seq()) {
      refresh_stream_epoch();
      snapshot = labels_.load();
    }
    return snapshot;
  }
  // Classic mode: the epoch only goes stale when the server started with
  // preloaded-but-dirty state (INGEST publishes eagerly).  Settle once.
  if (classic_stale_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(classifier_mutex_);
    publish_classic_epoch_locked();
  }
  return labels_.load();
}

dict::Intent Server::query_label(bgp::Community community) {
  return lookup(*query_snapshot(), community);
}

void Server::publish_classic_epoch_locked() {
  std::vector<std::pair<core::Community, core::Intent>> settled;
  classifier_.settle_dirty(settled);
  classic_stale_.store(false, std::memory_order_release);
  if (settled.empty()) return;
  auto next = labels_.clone_for_update();
  for (const auto& [community, intent] : settled)
    next->labels[community.wire()] = intent;
  labels_.publish(std::move(next));
}

void Server::refresh_stream_epoch() {
  const std::lock_guard<std::mutex> lock(refresh_mutex_);
  auto current = labels_.load();
  if (current->as_of_seq >= engine_->published_seq()) return;  // raced ahead
  auto next = std::make_shared<LabelTable>(*current);
  ++next->version;
  std::uint64_t after = next->as_of_seq;
  for (;;) {
    bool gap = false;
    const std::vector<stream::Event> events =
        engine_->events_since(after, kEventBatch, gap);
    if (gap) {
      // The ring trimmed past this epoch (possible after a long all-warm
      // stretch): rebuild from a full snapshot instead of a broken delta.
      std::uint64_t as_of = 0;
      next->labels.clear();
      for (const auto& [community, intent] : engine_->label_snapshot(as_of))
        next->labels.emplace(community.wire(), intent);
      after = as_of;
      continue;
    }
    if (events.empty()) break;
    for (const stream::Event& event : events)
      next->labels[event.change.community.wire()] = event.change.current;
    after = events.back().seq;
  }
  next->as_of_seq = after;
  labels_.publish(std::move(next));
}

bool Server::flush_conn(Shard& shard, Conn& conn) {
  while (conn.out_sent < conn.out.size()) {
    const ssize_t wrote =
        ::send(conn.fd, conn.out.data() + conn.out_sent,
               conn.out.size() - conn.out_sent, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (wrote < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (wrote == 0) break;
    conn.out_sent += static_cast<std::size_t>(wrote);
  }
  if (conn.out_sent == conn.out.size()) {
    // clear() keeps the capacity: this is the response arena's reuse.
    conn.out.clear();
    conn.out_sent = 0;
  } else if (conn.out_sent >= kCompactThreshold) {
    conn.out.erase(0, conn.out_sent);
    conn.out_sent = 0;
  }
  const bool want = conn.out_sent < conn.out.size();
  if (want != conn.want_epollout) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP | (want ? EPOLLOUT : 0u);
    ev.data.u64 = epoll_tag(conn.fd, conn.gen);
    ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.want_epollout = want;
  }
  return true;
}

void Server::close_conn(Shard& shard, int fd) {
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  shard.conns.erase(fd);
}

void Server::queue_events(Conn& conn, bool& lagged) {
  const std::size_t cap = config_.max_subscriber_queue_bytes;
  for (;;) {
    if (conn.out.size() - conn.out_sent >= cap) {
      // Outbox full: stop queuing and let the engine's event ring hold the
      // backlog.  Only when the ring has also trimmed past this peer is it
      // truly lagged — a delta can no longer be served and a snapshot
      // would have nowhere to go.
      bool gap = false;
      (void)engine_->events_since(conn.next_after, 0, gap);
      lagged = gap;
      return;
    }
    bool gap = false;
    const std::vector<stream::Event> events =
        engine_->events_since(conn.next_after, kEventBatch, gap);
    if (gap) {
      // The peer fell more than kMaxBufferedEvents behind: resync it with
      // a fresh full snapshot instead of a silently incomplete delta.
      std::uint64_t seq = 0;
      conn.out += snapshot_block(*engine_, seq) + "\n";
      conn.next_after = seq;
      continue;
    }
    if (events.empty()) return;
    for (const stream::Event& event : events)
      conn.out += format_event(event) + "\n";
    conn.next_after = events.back().seq;
    if (events.size() < kEventBatch) return;
  }
}

void Server::drop_lagged(Conn& conn) {
  // The outbox is full and the engine's event ring has already cycled
  // past this peer — it cannot be caught up.  A partial send can leave
  // conn.out_sent mid-line, so the notice must not be injected at the
  // flush point: complete the line currently in flight, drop the rest of
  // the unsent backlog, and finish with the ERR at that line boundary so
  // the peer never sees a torn EVENT line spliced with the error.
  const std::size_t boundary = conn.out.find('\n', conn.out_sent);
  conn.out.resize(boundary == std::string::npos ? conn.out_sent
                                                : boundary + 1);
  conn.out += "ERR lagged\n";
  conn.subscribed = false;  // no more events; the idle sweep may reap it
  conn.close_after_flush = true;
  subscribers_dropped_.fetch_add(1, std::memory_order_relaxed);
}

void Server::service_subscribers(Shard& shard) {
  std::vector<int> dead;
  for (auto& [fd, conn] : shard.conns) {
    if (!conn.subscribed) continue;
    bool lagged = false;
    bool ok = flush_conn(shard, conn);  // make room before queuing more
    if (ok) queue_events(conn, lagged);
    if (ok && lagged) drop_lagged(conn);
    if (ok) ok = flush_conn(shard, conn);
    if (ok && conn.close_after_flush && conn.out_sent >= conn.out.size())
      ok = false;
    if (!ok) dead.push_back(fd);
  }
  for (const int fd : dead) close_conn(shard, fd);
}

int Server::sweep_idle(Shard& shard) {
  if (config_.read_timeout_ms <= 0) return -1;
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(config_.read_timeout_ms);
  std::vector<int> expired;
  auto next_deadline = std::chrono::steady_clock::time_point::max();
  for (const auto& [fd, conn] : shard.conns) {
    if (conn.subscribed) continue;  // parked push streams never time out
    const auto deadline = conn.last_activity + timeout;
    if (deadline <= now) {
      if (conn.mode != ConnMode::kBinary)
        (void)::send(fd, "ERR read timeout\n", 17,
                     MSG_NOSIGNAL | MSG_DONTWAIT);
      expired.push_back(fd);
    } else {
      next_deadline = std::min(next_deadline, deadline);
    }
  }
  for (const int fd : expired) close_conn(shard, fd);
  if (next_deadline == std::chrono::steady_clock::time_point::max())
    return -1;  // nothing to time out: block until a fd wakes us
  const auto wait = std::chrono::ceil<std::chrono::milliseconds>(
      next_deadline - now);
  return static_cast<int>(std::max<std::int64_t>(wait.count(), 1));
}

bool Server::handle_command(Shard& shard, const std::string& line,
                            Conn& conn) {
  std::string response;
  const bool keep_open = [&] {
    const auto fields = util::split_whitespace(line);
    if (fields.empty()) return true;  // stray blank line: nothing to answer
    const std::string_view command = fields.front();

    if (command == "LABEL") {
      if (fields.size() != 2) {
        response = "ERR usage: LABEL <alpha:beta>";
        return true;
      }
      const auto community = bgp::Community::parse(fields[1]);
      if (!community) {
        response = util::format("ERR '%.*s' is not alpha:beta",
                                static_cast<int>(fields[1].size()),
                                fields[1].data());
        return true;
      }
      const auto begin = std::chrono::steady_clock::now();
      const core::Intent label = query_label(*community);
      const std::chrono::duration<double, std::micro> elapsed =
          std::chrono::steady_clock::now() - begin;
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      record_query_latency(shard, elapsed.count());
      response = util::format("OK community=%s label=%s",
                              community->to_string().c_str(),
                              std::string(dict::to_string(label)).c_str());
      return true;
    }

    if (command == "INGEST") {
      if (fields.size() < 3 || fields.size() % 2 != 1) {
        response =
            "ERR usage: INGEST <as-path> <communities> "
            "[<as-path> <communities> ...]";
        return true;
      }
      const std::size_t pairs = (fields.size() - 1) / 2;
      std::uint64_t errors = 0;
      std::size_t ingested = 0;
      std::size_t entries = 0;
      // Single pass, one scratch row: each valid pair is parsed into the
      // scratch and ingested immediately — the streaming-sink idiom of the
      // MRT path (docs/PERFORMANCE.md), with no batch vector in between.
      // The classifier mutex guards classic mode only; the stream engine
      // synchronizes internally.
      bgp::RibEntry scratch;
      {
        std::unique_lock<std::mutex> lock(classifier_mutex_, std::defer_lock);
        if (engine_ == nullptr) lock.lock();
        for (std::size_t i = 0; i < pairs; ++i) {
          const std::string_view path_field = fields[1 + 2 * i];
          const std::string_view communities_field = fields[2 + 2 * i];
          auto path = parse_path(path_field);
          if (!path) {
            // A single-pair request keeps the historical hard ERR; in a
            // batch a malformed pair is skipped and counted, like a torn
            // MRT record.  Nothing has been ingested yet in the
            // single-pair case, so the early return mutates no state.
            if (pairs == 1) {
              response =
                  util::format("ERR '%.*s' is not a comma-separated AS path",
                               static_cast<int>(path_field.size()),
                               path_field.data());
              return true;
            }
            ++errors;
            continue;
          }
          auto communities = parse_communities(communities_field);
          if (!communities) {
            if (pairs == 1) {
              response = util::format(
                  "ERR '%.*s' is not a comma-separated community list",
                  static_cast<int>(communities_field.size()),
                  communities_field.data());
              return true;
            }
            ++errors;
            continue;
          }
          scratch.route.path = std::move(*path);
          scratch.route.communities = std::move(*communities);
          if (engine_ != nullptr) {
            engine_->announce(scratch);
          } else {
            classifier_.ingest(scratch);
          }
          ++ingested;
        }
        if (engine_ != nullptr) {
          // Publish label changes now so subscribers see protocol-driven
          // evidence without waiting for the next decode batch boundary.
          engine_->reclassify();
          entries = static_cast<std::size_t>(engine_->stats().announces);
        } else {
          classifier_.record_decode_outcome(ingested, errors);
          entries = classifier_.entries_ingested();
          // Settle the new evidence into the next RCU epoch before the
          // response commits: a LABEL that observes this OK observes the
          // labels it implies.
          publish_classic_epoch_locked();
        }
      }
      response = util::format("OK ingested=%zu errors=%llu entries=%zu",
                              ingested,
                              static_cast<unsigned long long>(errors),
                              entries);
      return true;
    }

    if (command == "TOTALS") {
      std::size_t communities = 0;
      std::size_t information = 0;
      std::size_t action = 0;
      std::size_t unclassified = 0;
      if (engine_ != nullptr) {
        const stream::WindowClassifier::Totals totals = engine_->totals();
        communities = totals.communities;
        information = totals.information;
        action = totals.action;
        unclassified = totals.unclassified;
      } else {
        const std::lock_guard<std::mutex> lock(classifier_mutex_);
        // Settle through the epoch publisher, not classifier_.totals()
        // alone: totals() consumes the dirty set privately, which would
        // strand the published RCU epoch on pre-settle labels forever
        // (classic_stale_ clears with nothing ever published).
        publish_classic_epoch_locked();
        const core::IncrementalClassifier::Totals totals =
            classifier_.totals();
        communities = totals.communities;
        information = totals.information;
        action = totals.action;
        unclassified = totals.unclassified;
      }
      response = util::format(
          "OK communities=%zu information=%zu action=%zu unclassified=%zu",
          communities, information, action, unclassified);
      return true;
    }

    if (command == "STATS") {
      const ServerStats s = stats();
      response = util::format(
          "OK uptime_s=%.1f connections=%llu queries=%llu entries=%llu "
          "dirty=%llu decode_ok=%llu decode_errors=%llu p50_us=%.1f "
          "p99_us=%.1f updates_ok=%llu updates_errors=%llu "
          "window_epochs=%llu reclassified_communities=%llu "
          "subscribers_dropped=%llu journal_appends=%llu journal_bytes=%llu "
          "recovered_events=%llu torn_tail_truncated=%llu label_epochs=%llu "
          "loop_wakeups=%llu batch_queries=%llu binary_connections=%llu",
          s.uptime_seconds,
          static_cast<unsigned long long>(s.connections_accepted),
          static_cast<unsigned long long>(s.queries_served),
          static_cast<unsigned long long>(s.entries_ingested),
          static_cast<unsigned long long>(s.dirty_alphas),
          static_cast<unsigned long long>(s.decode_records_ok),
          static_cast<unsigned long long>(s.decode_records_skipped),
          s.p50_query_us, s.p99_query_us,
          static_cast<unsigned long long>(s.updates_ok),
          static_cast<unsigned long long>(s.updates_errors),
          static_cast<unsigned long long>(s.window_epochs),
          static_cast<unsigned long long>(s.reclassified_communities),
          static_cast<unsigned long long>(s.subscribers_dropped),
          static_cast<unsigned long long>(s.journal_appends),
          static_cast<unsigned long long>(s.journal_bytes),
          static_cast<unsigned long long>(s.recovered_events),
          static_cast<unsigned long long>(s.torn_tail_truncated),
          static_cast<unsigned long long>(s.label_epochs),
          static_cast<unsigned long long>(s.loop_wakeups),
          static_cast<unsigned long long>(s.batch_queries),
          static_cast<unsigned long long>(s.binary_connections));
      return true;
    }

    if (command == "SUBSCRIBE") {
      if (engine_ == nullptr) {
        response =
            "ERR SUBSCRIBE requires a stream-mode server (bgpintent stream "
            "--listen)";
        return true;
      }
      bool want_snapshot = false;
      std::uint64_t from = 0;
      bool have_from = false;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string_view field = fields[i];
        if (field == "snapshot") {
          want_snapshot = true;
          continue;
        }
        if (field.starts_with("from=")) {
          const auto parsed = util::parse_u64(field.substr(5));
          if (parsed) {
            from = *parsed;
            have_from = true;
            continue;
          }
        }
        response = "ERR usage: SUBSCRIBE [snapshot] [from=<seq>]";
        return true;
      }
      // A resumption point that is no longer buffered (or never existed)
      // cannot be served as a delta: fall back to a full snapshot.
      bool resync = false;
      if (have_from) {
        bool gap = false;
        (void)engine_->events_since(from, 0, gap);
        resync = gap || from > engine_->last_seq();
      }
      std::uint64_t seq = 0;
      std::string push;
      if (want_snapshot || resync) {
        push = snapshot_block(*engine_, seq) + "\n";
      } else {
        seq = have_from ? from : engine_->last_seq();
      }
      conn.subscribed = true;
      conn.next_after = seq;
      conn.out += util::format("OK subscribed seq=%llu\n",
                               static_cast<unsigned long long>(seq));
      conn.out += push;
      // Queue whatever delta already exists so a from= resumption is
      // delivered without waiting for the next publish wakeup.
      bool lagged = false;
      queue_events(conn, lagged);
      if (lagged) drop_lagged(conn);  // sets close_after_flush itself
      return true;
    }

    if (command == "SNAPSHOT") {
      if (engine_ != nullptr) {
        response =
            "ERR SNAPSHOT is not supported in stream mode (window state is "
            "transient; see docs/STREAMING.md)";
        return true;
      }
      if (fields.size() != 2) {
        response = "ERR usage: SNAPSHOT <file>";
        return true;
      }
      const std::string path(fields[1]);
      try {
        write_snapshot_file(path);
      } catch (const std::exception& error) {
        response = util::format("ERR snapshot failed: %s", error.what());
        return true;
      }
      response = util::format("OK saved=%s", path.c_str());
      return true;
    }

    if (command == "QUIT") {
      response = "OK bye";
      return false;
    }

    response = util::format("ERR unknown command '%.*s'",
                            static_cast<int>(command.size()), command.data());
    return true;
  }();
  if (!response.empty()) {
    conn.out += response;
    conn.out += '\n';
  }
  return keep_open;
}

void Server::record_query_latency(Shard& shard, double microseconds) {
  const std::lock_guard<std::mutex> lock(shard.latency_mutex);
  if (shard.latency_us.size() < kLatencyWindow) {
    shard.latency_us.push_back(microseconds);
  } else {
    shard.latency_us[shard.latency_next] = microseconds;
  }
  shard.latency_next = (shard.latency_next + 1) % kLatencyWindow;
}

void Server::write_snapshot_file(const std::string& path) {
  if (engine_ != nullptr)
    throw ServeError("snapshots are not supported in stream mode");
  std::vector<std::uint8_t> bytes;
  {
    const std::lock_guard<std::mutex> lock(classifier_mutex_);
    bytes = encode_snapshot(classifier_, config_.snapshot_format);
  }
  write_snapshot_bytes(bytes, path);
}

ServerStats Server::stats() const {
  ServerStats s;
  if (running_.load(std::memory_order_acquire)) {
    const std::chrono::duration<double> uptime =
        std::chrono::steady_clock::now() - started_at_;
    s.uptime_seconds = uptime.count();
  }
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  s.binary_connections = binary_connections_.load(std::memory_order_relaxed);
  s.subscribers_dropped = subscribers_dropped_.load(std::memory_order_relaxed);
  s.label_epochs = labels_.load()->version;
  for (const auto& shard : shards_)
    s.loop_wakeups += shard->wakeups.load(std::memory_order_relaxed);
  if (engine_ != nullptr) {
    const stream::EngineStats es = engine_->stats();
    s.entries_ingested = es.announces;
    s.dirty_alphas = es.dirty_alphas;
    s.decode_records_ok = es.updates_ok;
    s.decode_records_skipped = es.updates_errors;
    s.updates_ok = es.updates_ok;
    s.updates_errors = es.updates_errors;
    s.window_epochs = es.window_epochs;
    s.reclassified_communities = es.reclassified_communities;
    s.journal_appends = es.journal_appends;
    s.journal_bytes = es.journal_bytes;
    s.recovered_events = es.recovered_events;
    s.torn_tail_truncated = es.torn_tail_truncated;
  } else {
    const std::lock_guard<std::mutex> lock(classifier_mutex_);
    s.entries_ingested = classifier_.entries_ingested();
    s.dirty_alphas = classifier_.dirty_alpha_count();
    s.decode_records_ok = classifier_.decode_records_ok();
    s.decode_records_skipped = classifier_.decode_records_skipped();
  }
  std::vector<double> window;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->latency_mutex);
    window.insert(window.end(), shard->latency_us.begin(),
                  shard->latency_us.end());
  }
  if (!window.empty()) {
    s.p50_query_us = util::percentile(window, 50.0);
    s.p99_query_us = util::percentile(std::move(window), 99.0);
  }
  return s;
}

}  // namespace bgpintent::serve
