#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/snapshot.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace bgpintent::serve {

namespace {

/// Poll granularity: the upper bound on how long stop/timeout checks lag.
constexpr int kPollSliceMs = 100;

[[nodiscard]] bool send_all(int fd, std::string_view text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t wrote = ::send(fd, text.data() + sent, text.size() - sent,
                                 MSG_NOSIGNAL);
    if (wrote <= 0) return false;
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

[[nodiscard]] std::string label_name(core::Intent label) {
  return std::string(dict::to_string(label));
}

/// "DATA ...\nEND snapshot seq=N" (newline-separated, no trailing newline):
/// the full-snapshot block of the SUBSCRIBE protocol (docs/STREAMING.md).
[[nodiscard]] std::string snapshot_block(stream::StreamEngine& engine,
                                         std::uint64_t& seq) {
  std::string block;
  for (const auto& [community, label] : engine.label_snapshot(seq)) {
    block += util::format("DATA community=%s label=%s\n",
                          community.to_string().c_str(),
                          label_name(label).c_str());
  }
  block += util::format("END snapshot seq=%llu",
                        static_cast<unsigned long long>(seq));
  return block;
}

[[nodiscard]] std::string format_event(const stream::Event& event) {
  return util::format(
      "EVENT seq=%llu community=%s old=%s new=%s epoch=%llu",
      static_cast<unsigned long long>(event.seq),
      event.change.community.to_string().c_str(),
      label_name(event.change.previous).c_str(),
      label_name(event.change.current).c_str(),
      static_cast<unsigned long long>(event.change.epoch));
}

}  // namespace

Server::Server(core::IncrementalClassifier classifier, ServerConfig config)
    : classifier_(std::move(classifier)), config_(std::move(config)) {
  latency_us_.reserve(kLatencyWindow);
}

Server::Server(stream::StreamEngine& engine, ServerConfig config)
    : engine_(&engine), config_(std::move(config)) {
  latency_us_.reserve(kLatencyWindow);
}

Server::~Server() {
  request_stop();
  wait();
}

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw ServeError(util::format("cannot create socket: %s",
                                  std::strerror(errno)));
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.listen_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServeError(util::format("'%s' is not a valid IPv4 listen address",
                                  config_.listen_address.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int error = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServeError(util::format("cannot listen on %s:%u: %s",
                                  config_.listen_address.c_str(),
                                  config_.port, std::strerror(error)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  started_at_ = std::chrono::steady_clock::now();
  stop_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // drains every in-flight and queued connection handler
  {
    const std::lock_guard<std::mutex> lock(subscribers_mutex_);
    for (Subscriber& sub : subscribers_) {
      // One best-effort non-blocking flush so a graceful shutdown does not
      // silently drop queued-but-unsent events; whatever still cannot be
      // written is recoverable via SUBSCRIBE from=<last seen seq>.
      (void)flush_outbox(sub);
      ::close(sub.fd);
    }
    subscribers_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (engine_ == nullptr && !config_.snapshot_path.empty()) {
    try {
      write_snapshot_file(config_.snapshot_path);
    } catch (const std::exception& error) {
      util::log_warn(
          util::format("final snapshot failed: %s", error.what()));
    }
  }
}

void Server::accept_loop() {
  auto last_snapshot = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready > 0 && (pfd.revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        auto future = pool_->submit([this, fd] { handle_connection(fd); });
        (void)future;  // abandoning a ThreadPool future is safe by contract
      }
    }
    if (engine_ != nullptr) service_subscribers();
    if (engine_ == nullptr && config_.snapshot_interval_s > 0 &&
        !config_.snapshot_path.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_snapshot >=
          std::chrono::seconds(config_.snapshot_interval_s)) {
        last_snapshot = now;
        try {
          write_snapshot_file(config_.snapshot_path);
        } catch (const std::exception& error) {
          util::log_warn(
              util::format("periodic snapshot failed: %s", error.what()));
        }
      }
    }
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  ConnState state;
  int idle_ms = 0;
  bool open = true;
  while (open && !stop_.load(std::memory_order_relaxed)) {
    // Serve every complete line already buffered.
    std::size_t newline;
    while (open && !state.subscribed &&
           (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::string response;
      open = handle_command(line, response, state);
      if (!response.empty() && !send_all(fd, response + "\n")) open = false;
    }
    if (!open) break;
    if (state.subscribed) {
      // The connection is a push stream now.  Hand it to the accept
      // thread's subscriber registry and release this pool worker — a
      // parked subscriber must not starve request/response connections
      // when the pool is small.  The SUBSCRIBE snapshot block (when one
      // was requested) rides along as the first outbox payload so it is
      // delivered with non-blocking sends like every later event.
      Subscriber sub;
      sub.fd = fd;
      sub.outbox = std::move(state.pending_push);
      state.pending_push.clear();
      sub.state = state;
      const std::lock_guard<std::mutex> lock(subscribers_mutex_);
      subscribers_.push_back(std::move(sub));
      return;
    }
    if (buffer.size() > kMaxLineBytes) {
      (void)send_all(fd, "ERR line too long\n");
      break;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) break;
    if (ready == 0) {
      idle_ms += kPollSliceMs;
      if (config_.read_timeout_ms > 0 && idle_ms >= config_.read_timeout_ms) {
        (void)send_all(fd, "ERR read timeout\n");
        break;
      }
      continue;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) break;  // peer closed or hard error
    idle_ms = 0;
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
}

void Server::service_subscribers() {
  const std::lock_guard<std::mutex> lock(subscribers_mutex_);
  std::size_t live = 0;
  for (Subscriber& sub : subscribers_) {
    bool ok = true;
    // Detect peer close / drain unread bytes: after SUBSCRIBE the protocol
    // is push-only, so inbound data is discarded rather than parsed.
    for (;;) {
      char chunk[4096];
      const ssize_t got = ::recv(sub.fd, chunk, sizeof chunk, MSG_DONTWAIT);
      if (got == 0) {
        ok = false;  // orderly close
        break;
      }
      if (got < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK) ok = false;
        break;
      }
    }
    bool lagged = false;
    if (ok) ok = flush_outbox(sub);  // make room before queuing more
    if (ok) queue_events(sub, lagged);
    if (ok && !lagged) ok = flush_outbox(sub);
    if (lagged) {
      // The outbox is full and the engine's event ring has already cycled
      // past this peer — it cannot be caught up.  Best-effort final
      // notice; a peer this far behind may have no socket room for it.
      (void)::send(sub.fd, "ERR lagged\n", 11, MSG_NOSIGNAL | MSG_DONTWAIT);
      subscribers_dropped_.fetch_add(1, std::memory_order_relaxed);
      ok = false;
    }
    if (ok) {
      // Guard against self-move: when no earlier subscriber was dropped the
      // source and destination alias, and moving a Subscriber onto itself
      // would empty its outbox while outbox_sent survives.
      if (&subscribers_[live] != &sub) subscribers_[live] = std::move(sub);
      ++live;
    } else {
      ::close(sub.fd);
    }
  }
  subscribers_.resize(live);
}

void Server::queue_events(Subscriber& sub, bool& lagged) {
  constexpr std::size_t kEventBatch = 1024;
  const std::size_t cap = config_.max_subscriber_queue_bytes;
  for (;;) {
    if (sub.outbox.size() - sub.outbox_sent >= cap) {
      // Outbox full: stop queuing and let the engine's event ring hold the
      // backlog.  Only when the ring has also trimmed past this peer is it
      // truly lagged — a delta can no longer be served and a snapshot
      // would have nowhere to go.
      bool gap = false;
      (void)engine_->events_since(sub.state.next_after, 0, gap);
      lagged = gap;
      return;
    }
    bool gap = false;
    const std::vector<stream::Event> events =
        engine_->events_since(sub.state.next_after, kEventBatch, gap);
    if (gap) {
      // The peer fell more than kMaxBufferedEvents behind: resync it with
      // a fresh full snapshot instead of a silently incomplete delta.
      std::uint64_t seq = 0;
      sub.outbox += snapshot_block(*engine_, seq) + "\n";
      sub.state.next_after = seq;
      continue;
    }
    if (events.empty()) return;
    for (const stream::Event& event : events)
      sub.outbox += format_event(event) + "\n";
    sub.state.next_after = events.back().seq;
    if (events.size() < kEventBatch) return;
  }
}

bool Server::flush_outbox(Subscriber& sub) {
  while (sub.outbox_sent < sub.outbox.size()) {
    const ssize_t wrote =
        ::send(sub.fd, sub.outbox.data() + sub.outbox_sent,
               sub.outbox.size() - sub.outbox_sent,
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (wrote < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      return false;  // dead socket
    }
    if (wrote == 0) break;
    sub.outbox_sent += static_cast<std::size_t>(wrote);
  }
  if (sub.outbox_sent == sub.outbox.size()) {
    sub.outbox.clear();
    sub.outbox_sent = 0;
  } else if (sub.outbox_sent >= 64 * 1024) {
    sub.outbox.erase(0, sub.outbox_sent);
    sub.outbox_sent = 0;
  }
  return true;
}

bool Server::handle_command(const std::string& line, std::string& response,
                            ConnState& state) {
  const auto fields = util::split_whitespace(line);
  if (fields.empty()) return true;  // stray blank line: nothing to answer
  const std::string_view command = fields.front();

  if (command == "LABEL") {
    if (fields.size() != 2) {
      response = "ERR usage: LABEL <alpha:beta>";
      return true;
    }
    const auto community = bgp::Community::parse(fields[1]);
    if (!community) {
      response = util::format("ERR '%.*s' is not alpha:beta",
                              static_cast<int>(fields[1].size()),
                              fields[1].data());
      return true;
    }
    const auto begin = std::chrono::steady_clock::now();
    core::Intent label;
    if (engine_ != nullptr) {
      label = engine_->label_of(*community);
    } else {
      const std::lock_guard<std::mutex> lock(classifier_mutex_);
      label = classifier_.label_of(*community);
    }
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - begin;
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    record_query_latency(elapsed.count());
    response = util::format("OK community=%s label=%s",
                            community->to_string().c_str(),
                            std::string(dict::to_string(label)).c_str());
    return true;
  }

  if (command == "INGEST") {
    if (fields.size() < 3 || fields.size() % 2 != 1) {
      response =
          "ERR usage: INGEST <as-path> <communities> "
          "[<as-path> <communities> ...]";
      return true;
    }
    const std::size_t pairs = (fields.size() - 1) / 2;
    std::uint64_t errors = 0;
    std::size_t ingested = 0;
    std::size_t entries = 0;
    // Single pass, one scratch row: each valid pair is parsed into the
    // scratch and ingested immediately — the streaming-sink idiom of the
    // MRT path (docs/PERFORMANCE.md), with no batch vector in between.
    // The classifier mutex guards classic mode only; the stream engine
    // synchronizes internally.
    bgp::RibEntry scratch;
    {
      std::unique_lock<std::mutex> lock(classifier_mutex_, std::defer_lock);
      if (engine_ == nullptr) lock.lock();
      for (std::size_t i = 0; i < pairs; ++i) {
        const std::string_view path_field = fields[1 + 2 * i];
        const std::string_view communities_field = fields[2 + 2 * i];
        auto path = parse_path(path_field);
        if (!path) {
          // A single-pair request keeps the historical hard ERR; in a
          // batch a malformed pair is skipped and counted, like a torn
          // MRT record.  Nothing has been ingested yet in the single-pair
          // case, so the early return mutates no state.
          if (pairs == 1) {
            response =
                util::format("ERR '%.*s' is not a comma-separated AS path",
                             static_cast<int>(path_field.size()),
                             path_field.data());
            return true;
          }
          ++errors;
          continue;
        }
        auto communities = parse_communities(communities_field);
        if (!communities) {
          if (pairs == 1) {
            response = util::format(
                "ERR '%.*s' is not a comma-separated community list",
                static_cast<int>(communities_field.size()),
                communities_field.data());
            return true;
          }
          ++errors;
          continue;
        }
        scratch.route.path = std::move(*path);
        scratch.route.communities = std::move(*communities);
        if (engine_ != nullptr) {
          engine_->announce(scratch);
        } else {
          classifier_.ingest(scratch);
        }
        ++ingested;
      }
      if (engine_ != nullptr) {
        // Publish label changes now so subscribers see protocol-driven
        // evidence without waiting for the next decode batch boundary.
        engine_->reclassify();
        entries = static_cast<std::size_t>(engine_->stats().announces);
      } else {
        classifier_.record_decode_outcome(ingested, errors);
        entries = classifier_.entries_ingested();
      }
    }
    response = util::format(
        "OK ingested=%zu errors=%llu entries=%zu", ingested,
        static_cast<unsigned long long>(errors), entries);
    return true;
  }

  if (command == "TOTALS") {
    std::size_t communities = 0;
    std::size_t information = 0;
    std::size_t action = 0;
    std::size_t unclassified = 0;
    if (engine_ != nullptr) {
      const stream::WindowClassifier::Totals totals = engine_->totals();
      communities = totals.communities;
      information = totals.information;
      action = totals.action;
      unclassified = totals.unclassified;
    } else {
      const std::lock_guard<std::mutex> lock(classifier_mutex_);
      const core::IncrementalClassifier::Totals totals = classifier_.totals();
      communities = totals.communities;
      information = totals.information;
      action = totals.action;
      unclassified = totals.unclassified;
    }
    response = util::format(
        "OK communities=%zu information=%zu action=%zu unclassified=%zu",
        communities, information, action, unclassified);
    return true;
  }

  if (command == "STATS") {
    const ServerStats s = stats();
    response = util::format(
        "OK uptime_s=%.1f connections=%llu queries=%llu entries=%llu "
        "dirty=%llu decode_ok=%llu decode_errors=%llu p50_us=%.1f "
        "p99_us=%.1f updates_ok=%llu updates_errors=%llu window_epochs=%llu "
        "reclassified_communities=%llu subscribers_dropped=%llu "
        "journal_appends=%llu journal_bytes=%llu recovered_events=%llu "
        "torn_tail_truncated=%llu",
        s.uptime_seconds,
        static_cast<unsigned long long>(s.connections_accepted),
        static_cast<unsigned long long>(s.queries_served),
        static_cast<unsigned long long>(s.entries_ingested),
        static_cast<unsigned long long>(s.dirty_alphas),
        static_cast<unsigned long long>(s.decode_records_ok),
        static_cast<unsigned long long>(s.decode_records_skipped),
        s.p50_query_us, s.p99_query_us,
        static_cast<unsigned long long>(s.updates_ok),
        static_cast<unsigned long long>(s.updates_errors),
        static_cast<unsigned long long>(s.window_epochs),
        static_cast<unsigned long long>(s.reclassified_communities),
        static_cast<unsigned long long>(s.subscribers_dropped),
        static_cast<unsigned long long>(s.journal_appends),
        static_cast<unsigned long long>(s.journal_bytes),
        static_cast<unsigned long long>(s.recovered_events),
        static_cast<unsigned long long>(s.torn_tail_truncated));
    return true;
  }

  if (command == "SUBSCRIBE") {
    if (engine_ == nullptr) {
      response =
          "ERR SUBSCRIBE requires a stream-mode server (bgpintent stream "
          "--listen)";
      return true;
    }
    bool want_snapshot = false;
    std::uint64_t from = 0;
    bool have_from = false;
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const std::string_view field = fields[i];
      if (field == "snapshot") {
        want_snapshot = true;
        continue;
      }
      if (field.starts_with("from=")) {
        const auto parsed = util::parse_u64(field.substr(5));
        if (parsed) {
          from = *parsed;
          have_from = true;
          continue;
        }
      }
      response = "ERR usage: SUBSCRIBE [snapshot] [from=<seq>]";
      return true;
    }
    // A resumption point that is no longer buffered (or never existed)
    // cannot be served as a delta: fall back to a full snapshot.
    bool resync = false;
    if (have_from) {
      bool gap = false;
      (void)engine_->events_since(from, 0, gap);
      resync = gap || from > engine_->last_seq();
    }
    std::uint64_t seq = 0;
    if (want_snapshot || resync) {
      // The snapshot block is queued to the subscriber outbox, not sent
      // inline: it can be large, and the pool worker must not block on a
      // peer that is slow to read it.
      state.pending_push = snapshot_block(*engine_, seq) + "\n";
    } else {
      seq = have_from ? from : engine_->last_seq();
    }
    state.subscribed = true;
    state.next_after = seq;
    response = util::format("OK subscribed seq=%llu",
                            static_cast<unsigned long long>(seq));
    return true;
  }

  if (command == "SNAPSHOT") {
    if (engine_ != nullptr) {
      response =
          "ERR SNAPSHOT is not supported in stream mode (window state is "
          "transient; see docs/STREAMING.md)";
      return true;
    }
    if (fields.size() != 2) {
      response = "ERR usage: SNAPSHOT <file>";
      return true;
    }
    const std::string path(fields[1]);
    try {
      write_snapshot_file(path);
    } catch (const std::exception& error) {
      response = util::format("ERR snapshot failed: %s", error.what());
      return true;
    }
    response = util::format("OK saved=%s", path.c_str());
    return true;
  }

  if (command == "QUIT") {
    response = "OK bye";
    return false;
  }

  response = util::format("ERR unknown command '%.*s'",
                          static_cast<int>(command.size()), command.data());
  return true;
}

void Server::record_query_latency(double microseconds) {
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  if (latency_us_.size() < kLatencyWindow) {
    latency_us_.push_back(microseconds);
  } else {
    latency_us_[latency_next_] = microseconds;
  }
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
}

void Server::write_snapshot_file(const std::string& path) {
  if (engine_ != nullptr)
    throw ServeError("snapshots are not supported in stream mode");
  std::vector<std::uint8_t> bytes;
  {
    const std::lock_guard<std::mutex> lock(classifier_mutex_);
    bytes = encode_snapshot(classifier_);
  }
  write_snapshot_bytes(bytes, path);
}

ServerStats Server::stats() const {
  ServerStats s;
  if (pool_ != nullptr) {
    const std::chrono::duration<double> uptime =
        std::chrono::steady_clock::now() - started_at_;
    s.uptime_seconds = uptime.count();
  }
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.subscribers_dropped = subscribers_dropped_.load(std::memory_order_relaxed);
  if (engine_ != nullptr) {
    const stream::EngineStats es = engine_->stats();
    s.entries_ingested = es.announces;
    s.dirty_alphas = es.dirty_alphas;
    s.decode_records_ok = es.updates_ok;
    s.decode_records_skipped = es.updates_errors;
    s.updates_ok = es.updates_ok;
    s.updates_errors = es.updates_errors;
    s.window_epochs = es.window_epochs;
    s.reclassified_communities = es.reclassified_communities;
    s.journal_appends = es.journal_appends;
    s.journal_bytes = es.journal_bytes;
    s.recovered_events = es.recovered_events;
    s.torn_tail_truncated = es.torn_tail_truncated;
  } else {
    const std::lock_guard<std::mutex> lock(classifier_mutex_);
    s.entries_ingested = classifier_.entries_ingested();
    s.dirty_alphas = classifier_.dirty_alpha_count();
    s.decode_records_ok = classifier_.decode_records_ok();
    s.decode_records_skipped = classifier_.decode_records_skipped();
  }
  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    window = latency_us_;
  }
  if (!window.empty()) {
    s.p50_query_us = util::percentile(window, 50.0);
    s.p99_query_us = util::percentile(std::move(window), 99.0);
  }
  return s;
}

}  // namespace bgpintent::serve
