#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "dict/intent.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace bgpintent::serve {

namespace {

/// Fetches a key from an OK response or throws with the offending line.
std::string require_key(const std::string& line, const std::string& key) {
  const auto pairs = parse_ok_response(line);
  if (!pairs)
    throw ServeError(util::format("server error: %s", line.c_str()));
  const auto it = pairs->find(key);
  if (it == pairs->end())
    throw ServeError(
        util::format("response missing %s: %s", key.c_str(), line.c_str()));
  return it->second;
}

std::size_t require_size(const std::string& line, const std::string& key) {
  const auto parsed = util::parse_u64(require_key(line, key));
  if (!parsed)
    throw ServeError(
        util::format("response field %s is not a number: %s", key.c_str(),
                     line.c_str()));
  return static_cast<std::size_t>(*parsed);
}

}  // namespace

bool ConnectError::transient() const noexcept {
  switch (errno_) {
    case ECONNREFUSED:
    case ETIMEDOUT:
    case ECONNRESET:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case EAGAIN:
    case EINTR:
      return true;
    default:
      return false;
  }
}

Client Client::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw ConnectError(
        util::format("cannot create socket: %s", std::strerror(errno)),
        errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    // errno 0: an unparsable address is never transient.
    throw ConnectError(
        util::format("'%s' is not a valid IPv4 address", host.c_str()), 0);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int error = errno;
    ::close(fd);
    throw ConnectError(util::format("cannot connect to %s:%u: %s",
                                    host.c_str(), port, std::strerror(error)),
                       error);
  }
  // Request/response protocols on loopback want the write out now, not
  // Nagle-batched with the next one.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Client(fd);
}

Client Client::connect_with_retry(const std::string& host, std::uint16_t port,
                                  const RetryPolicy& policy) {
  util::Rng rng(policy.jitter_seed);
  const unsigned attempts = std::max(policy.max_attempts, 1u);
  for (unsigned attempt = 0;; ++attempt) {
    try {
      return connect(host, port);
    } catch (const ConnectError& error) {
      if (!error.transient() || attempt + 1 >= attempts) throw;
    }
    double delay_ms = static_cast<double>(policy.initial_delay_ms);
    for (unsigned k = 0; k < attempt; ++k) delay_ms *= 2.0;
    delay_ms = std::min(delay_ms, static_cast<double>(policy.max_delay_ms));
    const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
    // Symmetric jitter in [-j, +j] of the delay, never below zero.
    delay_ms *= 1.0 + jitter * (2.0 * rng.uniform01() - 1.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(std::max(delay_ms, 0.0)));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      binary_(std::exchange(other.binary_, false)),
      buffer_(std::move(other.buffer_)),
      scratch_(std::move(other.scratch_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    binary_ = std::exchange(other.binary_, false);
    buffer_ = std::move(other.buffer_);
    scratch_ = std::move(other.scratch_);
  }
  return *this;
}

void Client::send_raw(std::string_view bytes) {
  if (fd_ < 0) throw ServeError("client is not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0)
      throw ServeError(util::format("send failed: %s", std::strerror(errno)));
    sent += static_cast<std::size_t>(wrote);
  }
}

std::uint8_t Client::read_frame(std::string& body) {
  namespace bin = binary;
  for (;;) {
    bin::Frame frame;
    const auto result = bin::parse_frame(
        {reinterpret_cast<const unsigned char*>(buffer_.data()),
         buffer_.size()},
        frame);
    if (result == bin::ParseResult::kFrame) {
      body.assign(reinterpret_cast<const char*>(frame.body.data()),
                  frame.body.size());
      const std::uint8_t tag = frame.tag;
      buffer_.erase(0, frame.consumed);
      return tag;
    }
    if (result != bin::ParseResult::kNeedMore)
      throw ServeError("malformed frame from server");
    char chunk[16384];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got <= 0) throw ServeError("connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

void Client::throw_wire_error(std::string_view body) {
  const auto error = binary::parse_err_body(
      {reinterpret_cast<const unsigned char*>(body.data()), body.size()});
  if (!error) throw ServeError("server error: unparseable ERR frame");
  throw ServeError(util::format("server error %u: %s",
                                static_cast<unsigned>(error->code),
                                error->message.c_str()));
}

void Client::negotiate_binary() {
  namespace bin = binary;
  if (binary_) return;
  scratch_.clear();
  bin::encode_hello(scratch_);
  send_raw(scratch_);
  std::string body;
  const std::uint8_t status = read_frame(body);
  if (status != static_cast<std::uint8_t>(bin::Status::kOk))
    throw_wire_error(body);
  if (body.size() != 3 ||
      body[0] != static_cast<char>(bin::Op::kHello))
    throw ServeError("unexpected handshake response");
  binary_ = true;
}

std::vector<dict::Intent> Client::labels(
    std::span<const bgp::Community> communities) {
  namespace bin = binary;
  std::vector<dict::Intent> out;
  out.reserve(communities.size());
  if (!binary_) {
    for (const bgp::Community community : communities)
      out.push_back(label(community));
    return out;
  }
  scratch_.clear();
  bin::encode_batch_label_request(scratch_, communities);
  send_raw(scratch_);
  std::string body;
  const std::uint8_t status = read_frame(body);
  if (status != static_cast<std::uint8_t>(bin::Status::kOk))
    throw_wire_error(body);
  const auto* bytes = reinterpret_cast<const unsigned char*>(body.data());
  if (body.size() < 4 ||
      body.size() != 4 + static_cast<std::size_t>(bin::get_u32(bytes)))
    throw ServeError("malformed batch response");
  const std::uint32_t count = bin::get_u32(bytes);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto intent = bin::intent_from_wire(bytes[4 + i]);
    if (!intent) throw ServeError("unknown intent code in batch response");
    out.push_back(*intent);
  }
  return out;
}

binary::StatsPayload Client::binary_stats() {
  namespace bin = binary;
  if (!binary_) throw ServeError("binary_stats requires negotiate_binary()");
  scratch_.clear();
  bin::encode_stats_request(scratch_);
  send_raw(scratch_);
  std::string body;
  const std::uint8_t status = read_frame(body);
  if (status != static_cast<std::uint8_t>(bin::Status::kOk))
    throw_wire_error(body);
  const auto stats = bin::parse_stats_body(
      {reinterpret_cast<const unsigned char*>(body.data()), body.size()});
  if (!stats) throw ServeError("malformed stats response");
  return *stats;
}

std::string Client::request(const std::string& line) {
  send_line(line);
  auto response = read_line(-1);
  // read_line can only return nullopt on a timeout, and -1 never times out.
  return std::move(*response);
}

void Client::send_line(const std::string& line) {
  if (fd_ < 0) throw ServeError("client is not connected");
  const std::string out = line + "\n";
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t wrote =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0)
      throw ServeError(
          util::format("send failed: %s", std::strerror(errno)));
    sent += static_cast<std::size_t>(wrote);
  }
}

std::optional<std::string> Client::read_line(int timeout_ms) {
  if (fd_ < 0) throw ServeError("client is not connected");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    if (buffer_.size() > kMaxLineBytes)
      throw ServeError("server response exceeds the line limit");
    if (timeout_ms >= 0) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready == 0) return std::nullopt;
      if (ready < 0)
        throw ServeError(
            util::format("poll failed: %s", std::strerror(errno)));
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got <= 0) throw ServeError("connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

dict::Intent Client::label(bgp::Community community) {
  if (binary_) {
    namespace bin = binary;
    scratch_.clear();
    bin::encode_label_request(scratch_, community);
    send_raw(scratch_);
    std::string body;
    const std::uint8_t status = read_frame(body);
    if (status != static_cast<std::uint8_t>(bin::Status::kOk))
      throw_wire_error(body);
    if (body.size() != 1) throw ServeError("malformed label response");
    const auto intent =
        bin::intent_from_wire(static_cast<std::uint8_t>(body[0]));
    if (!intent) throw ServeError("unknown intent code in label response");
    return *intent;
  }
  const std::string response =
      request(util::format("LABEL %s", community.to_string().c_str()));
  const auto intent = dict::parse_intent(require_key(response, "label"));
  if (!intent)
    throw ServeError(
        util::format("unparseable label response: %s", response.c_str()));
  return *intent;
}

void Client::ingest(const bgp::AsPath& path,
                    std::span<const bgp::Community> communities) {
  const auto wire_path = format_path(path);
  if (!wire_path)
    throw ServeError(
        "INGEST requires a non-empty AS_SEQUENCE path (AS_SET aggregates "
        "cannot be expressed on the wire)");
  const std::string response =
      request(util::format("INGEST %s %s", wire_path->c_str(),
                           format_communities(communities).c_str()));
  (void)require_key(response, "ingested");
}

core::IncrementalClassifier::Totals Client::totals() {
  const std::string response = request("TOTALS");
  core::IncrementalClassifier::Totals totals;
  totals.communities = require_size(response, "communities");
  totals.information = require_size(response, "information");
  totals.action = require_size(response, "action");
  totals.unclassified = require_size(response, "unclassified");
  return totals;
}

void Client::snapshot(const std::string& path) {
  const std::string response =
      request(util::format("SNAPSHOT %s", path.c_str()));
  (void)require_key(response, "saved");
}

void Client::quit() {
  if (fd_ < 0) return;
  try {
    (void)request("QUIT");
  } catch (const ServeError&) {
    // The server may close before the response is read; that is still a
    // clean shutdown from the client's point of view.
  }
  ::close(fd_);
  fd_ = -1;
}

}  // namespace bgpintent::serve
