// Length-prefixed binary protocol of the serve tier (docs/SERVING.md §2).
//
// The line protocol costs a text parse, a map of string pairs, and one
// syscall round-trip per query; at "millions of users" rates the encode/
// decode dominates the classifier lookup by orders of magnitude.  This
// module defines the compact framing negotiated *on the same port* as the
// line protocol: a connection whose first byte is the magic byte 0xB6
// (never a valid line-protocol character) speaks binary frames from then
// on, every other connection speaks lines — existing clients keep working
// unchanged.
//
// Negotiation (client -> server, 8 bytes):
//
//   offset  size  field
//   0       4     magic  B6 'B' 'G' 'P'
//   4       2     protocol version (u16 LE, currently 1)
//   6       2     reserved, must be 0
//
// The server answers a HELLO-OK response frame carrying its version, or a
// framed error (kVersionSkew / kBadMagic) followed by a close.  After the
// handshake both directions speak frames:
//
//   offset  size  field
//   0       4     payload length N (u32 LE, bytes after this field)
//   4       1     request: opcode / response: status (0 OK, 1 ERR)
//   5       N-1   body
//
// Requests                       OK response body
//   kLabel       u32 community     u8 intent
//   kBatchLabel  u32 n, n x u32    u32 n, n x u8 intent
//   kStats       (empty)           StatsPayload (fixed u64/f64 fields)
// ERR response body: u16 ErrCode + UTF-8 message.
//
// Intent codes on the wire are the dict::Intent enum values (0 action,
// 1 information, 2 unclassified).  Frames never exceed kMaxFramePayload;
// a length field above it is answered with kOversized and the connection
// is closed before any body byte is read, so a length lie cannot make the
// server buffer unbounded input (tests/serve/binary_protocol_test.cpp
// fuzzes exactly this with mrt::corrupt_spans).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "bgp/community.hpp"
#include "dict/intent.hpp"

namespace bgpintent::serve::binary {

/// First hello byte; deliberately outside 7-bit ASCII so it can never be
/// confused with a line-protocol command.
inline constexpr unsigned char kMagic[4] = {0xB6, 'B', 'G', 'P'};
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHelloBytes = 8;

/// Bytes of the length prefix.
inline constexpr std::size_t kLengthBytes = 4;
/// Upper bound on one frame's payload (opcode/status byte + body): a
/// 64K-community batch.  Anything larger is a protocol error.
inline constexpr std::size_t kMaxFramePayload = (1u << 18) + 16;

enum class Op : std::uint8_t {
  kHello = 0x00,  ///< response-only: handshake acknowledgement
  kLabel = 0x01,
  kBatchLabel = 0x02,
  kStats = 0x03,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kErr = 1,
};

enum class ErrCode : std::uint16_t {
  kBadMagic = 1,
  kVersionSkew = 2,
  kBadOpcode = 3,
  kMalformed = 4,
  kOversized = 5,
};

/// Fixed-layout STATS response body (subset of ServerStats the binary
/// clients need; the line protocol remains the full ops surface).
struct StatsPayload {
  std::uint64_t connections = 0;
  std::uint64_t queries = 0;
  std::uint64_t batch_queries = 0;
  std::uint64_t entries = 0;
  std::uint64_t label_epochs = 0;  ///< RCU snapshots published
  double p50_us = 0.0;
  double p99_us = 0.0;

  friend bool operator==(const StatsPayload&, const StatsPayload&) = default;
};
inline constexpr std::size_t kStatsPayloadBytes = 5 * 8 + 2 * 8;

// --- little-endian primitives over a string arena -----------------------
// Responses are encoded by appending to a per-connection arena buffer that
// is reused across requests: zero allocations on the warm path.

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}
inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

[[nodiscard]] inline std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
[[nodiscard]] inline std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
[[nodiscard]] inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
[[nodiscard]] inline double get_f64(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// --- frame encode -------------------------------------------------------

/// Appends the 8-byte client hello.
void encode_hello(std::string& out, std::uint16_t version = kVersion);

/// Appends one request frame.
void encode_label_request(std::string& out, bgp::Community community);
void encode_batch_label_request(std::string& out,
                                std::span<const bgp::Community> communities);
void encode_stats_request(std::string& out);

/// Appends one response frame.
void encode_hello_ok(std::string& out, std::uint16_t version = kVersion);
void encode_label_ok(std::string& out, dict::Intent intent);
void encode_batch_label_ok(std::string& out,
                           std::span<const dict::Intent> intents);
void encode_stats_ok(std::string& out, const StatsPayload& stats);
void encode_err(std::string& out, ErrCode code, std::string_view message);

// --- frame decode -------------------------------------------------------

/// One frame sliced out of a receive buffer: `tag` is the opcode of a
/// request or the status byte of a response, `body` the bytes after it.
struct Frame {
  std::uint8_t tag = 0;
  std::span<const unsigned char> body;
  std::size_t consumed = 0;  ///< total frame bytes (length field included)
};

enum class ParseResult : std::uint8_t {
  kNeedMore,   ///< buffer holds a prefix of a valid frame
  kFrame,      ///< one complete frame extracted
  kOversized,  ///< length field exceeds kMaxFramePayload — protocol error
  kMalformed,  ///< zero-length payload (no tag byte)
};

/// Tries to slice the first frame out of `buffer` without copying.  The
/// returned Frame's spans alias `buffer` — consume before mutating it.
[[nodiscard]] ParseResult parse_frame(std::span<const unsigned char> buffer,
                                      Frame& frame);

/// Decoded ERR body.
struct WireError {
  ErrCode code = ErrCode::kMalformed;
  std::string message;
};
[[nodiscard]] std::optional<WireError> parse_err_body(
    std::span<const unsigned char> body);

[[nodiscard]] std::optional<StatsPayload> parse_stats_body(
    std::span<const unsigned char> body);

/// Intent <-> wire code; nullopt for out-of-range codes.
[[nodiscard]] std::optional<dict::Intent> intent_from_wire(
    std::uint8_t code) noexcept;

}  // namespace bgpintent::serve::binary
