#include "serve/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include "util/strings.hpp"

namespace bgpintent::serve {

namespace {

constexpr char kMagic[8] = {'B', 'G', 'P', 'I', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Little-endian integer append / bounds-checked read.

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_double(std::vector<std::uint8_t>& out, double value) {
  put(out, std::bit_cast<std::uint64_t>(value));
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_unsigned_v<T>);
    if (bytes_.size() - offset_ < sizeof(T))
      throw SnapshotError("truncated snapshot payload");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      value |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
    offset_ += sizeof(T);
    return static_cast<T>(value);
  }

  [[nodiscard]] double get_double() {
    return std::bit_cast<double>(get<std::uint64_t>());
  }

  /// Reads a count that is about to drive `element_bytes`-sized reads;
  /// rejects counts the remaining payload cannot possibly hold, so corrupt
  /// counts fail fast instead of attempting a huge allocation.
  [[nodiscard]] std::size_t get_count(std::size_t element_bytes) {
    const std::uint64_t count = get<std::uint64_t>();
    if (element_bytes != 0 && count > remaining() / element_bytes)
      throw SnapshotError("snapshot count exceeds payload size");
    return static_cast<std::size_t>(count);
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

void encode_payload(std::vector<std::uint8_t>& out,
                    const core::IncrementalClassifier& classifier) {
  const core::ClassifierConfig& config = classifier.classifier_config();
  const core::ObservationConfig& observation =
      classifier.observation_config();
  put<std::uint32_t>(out, config.min_gap);
  put_double(out, config.ratio_threshold);
  put<std::uint8_t>(out, config.mean_of_ratios ? 1 : 0);
  put<std::uint8_t>(out, observation.sibling_aware ? 1 : 0);

  const auto state = classifier.export_state();
  put<std::uint64_t>(out, state.entries_ingested);
  put<std::uint64_t>(out, state.decode_records_ok);
  put<std::uint64_t>(out, state.decode_records_skipped);

  put<std::uint64_t>(out, state.asns_on_paths.size());
  for (const bgp::Asn asn : state.asns_on_paths) put<std::uint32_t>(out, asn);

  put<std::uint64_t>(out, state.dirty.size());
  for (const std::uint16_t alpha : state.dirty) put<std::uint16_t>(out, alpha);

  put<std::uint64_t>(out, state.alphas.size());
  for (const auto& alpha : state.alphas) {
    put<std::uint16_t>(out, alpha.alpha);
    put<std::uint64_t>(out, alpha.betas.size());
    for (const auto& evidence : alpha.betas) {
      put<std::uint16_t>(out, evidence.beta);
      put<std::uint64_t>(out, evidence.on_paths.size());
      for (const std::uint64_t hash : evidence.on_paths)
        put<std::uint64_t>(out, hash);
      put<std::uint64_t>(out, evidence.off_paths.size());
      for (const std::uint64_t hash : evidence.off_paths)
        put<std::uint64_t>(out, hash);
    }
    put<std::uint64_t>(out, alpha.labels.size());
    for (const auto& [beta, intent] : alpha.labels) {
      put<std::uint16_t>(out, beta);
      put<std::uint8_t>(out, static_cast<std::uint8_t>(intent));
    }
  }
}

[[nodiscard]] core::IncrementalClassifier decode_payload(Cursor& cursor) {
  core::ClassifierConfig config;
  config.min_gap = cursor.get<std::uint32_t>();
  config.ratio_threshold = cursor.get_double();
  config.mean_of_ratios = cursor.get<std::uint8_t>() != 0;
  core::ObservationConfig observation;
  observation.sibling_aware = cursor.get<std::uint8_t>() != 0;

  core::IncrementalClassifier::State state;
  state.entries_ingested = cursor.get<std::uint64_t>();
  state.decode_records_ok = cursor.get<std::uint64_t>();
  state.decode_records_skipped = cursor.get<std::uint64_t>();

  state.asns_on_paths.resize(cursor.get_count(sizeof(std::uint32_t)));
  for (bgp::Asn& asn : state.asns_on_paths)
    asn = cursor.get<std::uint32_t>();

  state.dirty.resize(cursor.get_count(sizeof(std::uint16_t)));
  for (std::uint16_t& alpha : state.dirty)
    alpha = cursor.get<std::uint16_t>();

  state.alphas.resize(cursor.get_count(sizeof(std::uint16_t)));
  for (auto& alpha : state.alphas) {
    alpha.alpha = cursor.get<std::uint16_t>();
    alpha.betas.resize(cursor.get_count(sizeof(std::uint16_t)));
    for (auto& evidence : alpha.betas) {
      evidence.beta = cursor.get<std::uint16_t>();
      evidence.on_paths.resize(cursor.get_count(sizeof(std::uint64_t)));
      for (std::uint64_t& hash : evidence.on_paths)
        hash = cursor.get<std::uint64_t>();
      evidence.off_paths.resize(cursor.get_count(sizeof(std::uint64_t)));
      for (std::uint64_t& hash : evidence.off_paths)
        hash = cursor.get<std::uint64_t>();
    }
    alpha.labels.resize(cursor.get_count(3));
    for (auto& [beta, intent] : alpha.labels) {
      beta = cursor.get<std::uint16_t>();
      const std::uint8_t raw = cursor.get<std::uint8_t>();
      if (raw > static_cast<std::uint8_t>(core::Intent::kUnclassified))
        throw SnapshotError(
            util::format("snapshot label byte %u is not a valid intent", raw));
      intent = static_cast<core::Intent>(raw);
    }
  }
  if (cursor.remaining() != 0)
    throw SnapshotError("snapshot payload has trailing bytes");

  core::IncrementalClassifier classifier(config, observation);
  classifier.restore_state(state);
  return classifier;
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(
    const core::IncrementalClassifier& classifier) {
  std::vector<std::uint8_t> payload;
  encode_payload(payload, classifier);

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put<std::uint32_t>(out, kSnapshotVersion);
  put<std::uint64_t>(out, fnv1a64(payload));
  put<std::uint64_t>(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

core::IncrementalClassifier decode_snapshot(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes)
    throw SnapshotError(
        util::format("snapshot header truncated (%zu of %zu bytes)",
                     bytes.size(), kHeaderBytes));
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw SnapshotError("not a bgpintent snapshot (bad magic)");
  Cursor header(bytes.subspan(sizeof kMagic, kHeaderBytes - sizeof kMagic));
  const std::uint32_t version = header.get<std::uint32_t>();
  if (version > kSnapshotVersion)
    throw SnapshotError(util::format(
        "snapshot format version %u is newer than supported version %u",
        version, kSnapshotVersion));
  if (version != kSnapshotVersion)
    throw SnapshotError(util::format(
        "snapshot format version %u is no longer supported (this build "
        "reads only version %u; re-ingest the source data to produce a "
        "fresh snapshot)",
        version, kSnapshotVersion));
  const std::uint64_t checksum = header.get<std::uint64_t>();
  const std::uint64_t payload_size = header.get<std::uint64_t>();

  const auto payload = bytes.subspan(kHeaderBytes);
  if (payload.size() != payload_size)
    throw SnapshotError(util::format(
        "snapshot payload is %zu bytes but the header promises %llu",
        payload.size(), static_cast<unsigned long long>(payload_size)));
  if (fnv1a64(payload) != checksum)
    throw SnapshotError("snapshot checksum mismatch (corrupt file)");

  Cursor cursor(payload);
  return decode_payload(cursor);
}

void save_snapshot(const core::IncrementalClassifier& classifier,
                   std::ostream& out) {
  const auto bytes = encode_snapshot(classifier);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw SnapshotError("failed to write snapshot stream");
}

core::IncrementalClassifier load_snapshot(std::istream& in) {
  std::vector<std::uint8_t> bytes;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0)
    bytes.insert(bytes.end(), buffer, buffer + in.gcount());
  if (in.bad()) throw SnapshotError("failed to read snapshot stream");
  return decode_snapshot(bytes);
}

void save_snapshot(const core::IncrementalClassifier& classifier,
                   const std::string& path) {
  write_snapshot_bytes(encode_snapshot(classifier), path);
}

void write_snapshot_bytes(std::span<const std::uint8_t> bytes,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw SnapshotError(
          util::format("cannot open %s for writing", tmp.c_str()));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::remove(tmp.c_str());
      throw SnapshotError(util::format("failed to write %s", tmp.c_str()));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError(
        util::format("cannot rename %s to %s", tmp.c_str(), path.c_str()));
  }
}

core::IncrementalClassifier load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError(util::format("cannot open %s", path.c_str()));
  return load_snapshot(in);
}

}  // namespace bgpintent::serve
