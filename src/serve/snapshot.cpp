#include "serve/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "mrt/buffer.hpp"
#include "util/strings.hpp"

namespace bgpintent::serve {

// The v3 reader hands out typed spans straight into the file image, so it
// only works where the in-memory representation *is* the on-disk one.
static_assert(std::endian::native == std::endian::little,
              "snapshot v3 mmap reading requires a little-endian host");

namespace {

constexpr char kMagic[8] = {'B', 'G', 'P', 'I', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;  // v2 header

[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// v3 segment checksum: a 4-lane multiply-mix over 64-bit words.  The v3
// reader verifies every segment on open, so the checksum sits directly on
// the restart-to-first-query path and byte-at-a-time FNV (the v2 payload
// checksum above) would dominate it — on the committed restart baseline
// FNV alone cost ~8ms of a 9ms open.  Each lane's odd-constant multiply
// is bijective, so any single corrupted word changes its lane's value
// and the final xor-shift mix avalanches it across the digest; bit flips,
// truncations, and splices all land in a different digest just as they
// would under FNV.
[[nodiscard]] std::uint64_t checksum64(std::span<const std::uint8_t> bytes) {
  constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ULL;
  std::uint64_t lanes[4] = {0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL,
                            0xa4093822299f31d0ULL, 0x082efa98ec4e6c89ULL};
  const std::uint8_t* p = bytes.data();
  std::size_t remaining = bytes.size();
  while (remaining >= 32) {
    for (auto& lane : lanes) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      lane = (lane ^ word) * kMul;
      p += 8;
    }
    remaining -= 32;
  }
  // Tail: fold the leftover bytes (and the total length, so images that
  // differ only by trailing truncation cannot collide) into lane 0.
  std::uint64_t tail = bytes.size();
  for (std::size_t i = 0; i < remaining; ++i)
    tail = (tail << 8) ^ p[i] ^ (tail >> 56);
  lanes[0] = (lanes[0] ^ tail) * kMul;
  std::uint64_t hash =
      (lanes[0] ^ lanes[1]) * kMul ^ (lanes[2] ^ lanes[3]) * kMul;
  hash ^= hash >> 32;
  hash *= kMul;
  hash ^= hash >> 29;
  return hash;
}

// Little-endian integer append / bounds-checked read.

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_double(std::vector<std::uint8_t>& out, double value) {
  put(out, std::bit_cast<std::uint64_t>(value));
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_unsigned_v<T>);
    if (bytes_.size() - offset_ < sizeof(T))
      throw SnapshotError("truncated snapshot payload");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      value |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
    offset_ += sizeof(T);
    return static_cast<T>(value);
  }

  [[nodiscard]] double get_double() {
    return std::bit_cast<double>(get<std::uint64_t>());
  }

  /// Reads a count that is about to drive `element_bytes`-sized reads;
  /// rejects counts the remaining payload cannot possibly hold, so corrupt
  /// counts fail fast instead of attempting a huge allocation.
  [[nodiscard]] std::size_t get_count(std::size_t element_bytes) {
    const std::uint64_t count = get<std::uint64_t>();
    if (element_bytes != 0 && count > remaining() / element_bytes)
      throw SnapshotError("snapshot count exceeds payload size");
    return static_cast<std::size_t>(count);
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

// ---------------------------------------------------------------------------
// v2: row-oriented payload (byte-identical to what pre-v3 builds wrote).

void encode_payload(std::vector<std::uint8_t>& out,
                    const core::IncrementalClassifier& classifier) {
  const core::ClassifierConfig& config = classifier.classifier_config();
  const core::ObservationConfig& observation =
      classifier.observation_config();
  put<std::uint32_t>(out, config.min_gap);
  put_double(out, config.ratio_threshold);
  put<std::uint8_t>(out, config.mean_of_ratios ? 1 : 0);
  put<std::uint8_t>(out, observation.sibling_aware ? 1 : 0);

  const auto state = classifier.export_state();
  put<std::uint64_t>(out, state.entries_ingested);
  put<std::uint64_t>(out, state.decode_records_ok);
  put<std::uint64_t>(out, state.decode_records_skipped);

  put<std::uint64_t>(out, state.asns_on_paths.size());
  for (const bgp::Asn asn : state.asns_on_paths) put<std::uint32_t>(out, asn);

  put<std::uint64_t>(out, state.dirty.size());
  for (const std::uint16_t alpha : state.dirty) put<std::uint16_t>(out, alpha);

  put<std::uint64_t>(out, state.alphas.size());
  for (const auto& alpha : state.alphas) {
    put<std::uint16_t>(out, alpha.alpha);
    put<std::uint64_t>(out, alpha.betas.size());
    for (const auto& evidence : alpha.betas) {
      put<std::uint16_t>(out, evidence.beta);
      put<std::uint64_t>(out, evidence.on_paths.size());
      for (const std::uint64_t hash : evidence.on_paths)
        put<std::uint64_t>(out, hash);
      put<std::uint64_t>(out, evidence.off_paths.size());
      for (const std::uint64_t hash : evidence.off_paths)
        put<std::uint64_t>(out, hash);
    }
    put<std::uint64_t>(out, alpha.labels.size());
    for (const auto& [beta, intent] : alpha.labels) {
      put<std::uint16_t>(out, beta);
      put<std::uint8_t>(out, static_cast<std::uint8_t>(intent));
    }
  }
}

[[nodiscard]] core::IncrementalClassifier decode_payload(Cursor& cursor) {
  core::ClassifierConfig config;
  config.min_gap = cursor.get<std::uint32_t>();
  config.ratio_threshold = cursor.get_double();
  config.mean_of_ratios = cursor.get<std::uint8_t>() != 0;
  core::ObservationConfig observation;
  observation.sibling_aware = cursor.get<std::uint8_t>() != 0;

  core::IncrementalClassifier::State state;
  state.entries_ingested = cursor.get<std::uint64_t>();
  state.decode_records_ok = cursor.get<std::uint64_t>();
  state.decode_records_skipped = cursor.get<std::uint64_t>();

  state.asns_on_paths.resize(cursor.get_count(sizeof(std::uint32_t)));
  for (bgp::Asn& asn : state.asns_on_paths)
    asn = cursor.get<std::uint32_t>();

  state.dirty.resize(cursor.get_count(sizeof(std::uint16_t)));
  for (std::uint16_t& alpha : state.dirty)
    alpha = cursor.get<std::uint16_t>();

  state.alphas.resize(cursor.get_count(sizeof(std::uint16_t)));
  for (auto& alpha : state.alphas) {
    alpha.alpha = cursor.get<std::uint16_t>();
    alpha.betas.resize(cursor.get_count(sizeof(std::uint16_t)));
    for (auto& evidence : alpha.betas) {
      evidence.beta = cursor.get<std::uint16_t>();
      evidence.on_paths.resize(cursor.get_count(sizeof(std::uint64_t)));
      for (std::uint64_t& hash : evidence.on_paths)
        hash = cursor.get<std::uint64_t>();
      evidence.off_paths.resize(cursor.get_count(sizeof(std::uint64_t)));
      for (std::uint64_t& hash : evidence.off_paths)
        hash = cursor.get<std::uint64_t>();
    }
    alpha.labels.resize(cursor.get_count(3));
    for (auto& [beta, intent] : alpha.labels) {
      beta = cursor.get<std::uint16_t>();
      const std::uint8_t raw = cursor.get<std::uint8_t>();
      if (raw > static_cast<std::uint8_t>(core::Intent::kUnclassified))
        throw SnapshotError(
            util::format("snapshot label byte %u is not a valid intent", raw));
      intent = static_cast<core::Intent>(raw);
    }
  }
  if (cursor.remaining() != 0)
    throw SnapshotError("snapshot payload has trailing bytes");

  core::IncrementalClassifier classifier(config, observation);
  classifier.restore_state(state);
  return classifier;
}

[[nodiscard]] std::vector<std::uint8_t> encode_snapshot_v2(
    const core::IncrementalClassifier& classifier) {
  std::vector<std::uint8_t> payload;
  encode_payload(payload, classifier);

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put<std::uint32_t>(out, kSnapshotVersionMin);
  put<std::uint64_t>(out, fnv1a64(payload));
  put<std::uint64_t>(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// ---------------------------------------------------------------------------
// v3: columnar image (see snapshot.hpp for the byte layout).

constexpr std::size_t kV3HeaderBytes = 16;
constexpr std::size_t kV3Align = 64;
constexpr std::size_t kV3EntryBytes = 32;
constexpr std::size_t kV3FooterBytes = 32;
constexpr std::size_t kV3MetaBytes = 40;
constexpr std::uint32_t kV3FooterMagic = 0x33504e53;  // "SNP3" little-endian

// Segment kinds, in the exact order they appear in the file and in the
// segment table.  The table of one entry per kind is what makes the image
// self-describing; the reader insists on exactly this set in this order so
// a corrupt table cannot silently drop or duplicate a column.
enum V3Kind : std::uint32_t {
  kSegMeta = 1,
  kSegAsnsOnPaths,
  kSegDirtyAlphas,
  kSegAlphaIds,
  kSegAlphaBetaBegin,
  kSegAlphaLabelBegin,
  kSegBetaIds,
  kSegBetaOnBegin,
  kSegBetaOffBegin,
  kSegOnPathHashes,
  kSegOffPathHashes,
  kSegLabelBetas,
  kSegLabelIntents,
  kSegServeWires,
  kSegServeIntents,
  kSegPathAsnArena,
  kSegPathUniqArena,
  kSegPathSegTypes,
  kSegPathSegCounts,
  kSegPathAsnBegin,
  kSegPathAsnCount,
  kSegPathSegBegin,
  kSegPathSegCount,
  kSegPathUniqBegin,
  kSegPathUniqCount,
  kSegPathHashes,
};

struct V3KindInfo {
  const char* name;
  std::size_t width;  ///< element width in bytes
};
constexpr V3KindInfo kV3Kinds[] = {
    {"meta", kV3MetaBytes},
    {"asns_on_paths", 4},
    {"dirty_alphas", 2},
    {"alpha_ids", 2},
    {"alpha_beta_begin", 4},
    {"alpha_label_begin", 4},
    {"beta_ids", 2},
    {"beta_on_begin", 8},
    {"beta_off_begin", 8},
    {"on_path_hashes", 8},
    {"off_path_hashes", 8},
    {"label_betas", 2},
    {"label_intents", 1},
    {"serve_wires", 4},
    {"serve_intents", 1},
    {"path_asn_arena", 4},
    {"path_uniq_arena", 4},
    {"path_seg_types", 1},
    {"path_seg_counts", 4},
    {"path_asn_begin", 4},
    {"path_asn_count", 4},
    {"path_seg_begin", 4},
    {"path_seg_count", 4},
    {"path_uniq_begin", 4},
    {"path_uniq_count", 4},
    {"path_hashes", 8},
};
constexpr std::size_t kV3SegmentCount = std::size(kV3Kinds);

[[nodiscard]] SnapshotError region_error(std::size_t kind_index,
                                         const char* what) {
  return SnapshotError(util::format("snapshot v3 segment '%s' %s",
                                    kV3Kinds[kind_index].name, what));
}

[[nodiscard]] std::vector<std::uint8_t> encode_snapshot_v3(
    const core::IncrementalClassifier& classifier) {
  const core::ClassifierConfig& config = classifier.classifier_config();
  const core::ObservationConfig& observation =
      classifier.observation_config();
  const auto state = classifier.export_state();
  const auto paths = classifier.path_columns();

  // Flatten the sorted owned state into the column builders.  The serve
  // columns are label_snapshot() precomputed: one slot per evidence beta,
  // globally sorted by wire because alphas and per-alpha betas are.
  std::vector<std::uint16_t> alpha_ids;
  std::vector<std::uint32_t> alpha_beta_begin{0};
  std::vector<std::uint32_t> alpha_label_begin{0};
  std::vector<std::uint16_t> beta_ids;
  std::vector<std::uint64_t> beta_on_begin{0};
  std::vector<std::uint64_t> beta_off_begin{0};
  std::vector<std::uint64_t> on_hashes;
  std::vector<std::uint64_t> off_hashes;
  std::vector<std::uint16_t> label_betas;
  std::vector<std::uint8_t> label_intents;
  std::vector<std::uint32_t> serve_wires;
  std::vector<std::uint8_t> serve_intents;
  for (const auto& alpha : state.alphas) {
    alpha_ids.push_back(alpha.alpha);
    for (const auto& evidence : alpha.betas) {
      beta_ids.push_back(evidence.beta);
      on_hashes.insert(on_hashes.end(), evidence.on_paths.begin(),
                       evidence.on_paths.end());
      off_hashes.insert(off_hashes.end(), evidence.off_paths.begin(),
                        evidence.off_paths.end());
      beta_on_begin.push_back(on_hashes.size());
      beta_off_begin.push_back(off_hashes.size());
      serve_wires.push_back(static_cast<std::uint32_t>(alpha.alpha) << 16 |
                            evidence.beta);
      const auto label = std::lower_bound(
          alpha.labels.begin(), alpha.labels.end(), evidence.beta,
          [](const std::pair<std::uint16_t, core::Intent>& l,
             std::uint16_t b) { return l.first < b; });
      serve_intents.push_back(static_cast<std::uint8_t>(
          label == alpha.labels.end() || label->first != evidence.beta
              ? core::Intent::kUnclassified
              : label->second));
    }
    alpha_beta_begin.push_back(static_cast<std::uint32_t>(beta_ids.size()));
    for (const auto& [beta, intent] : alpha.labels) {
      label_betas.push_back(beta);
      label_intents.push_back(static_cast<std::uint8_t>(intent));
    }
    alpha_label_begin.push_back(
        static_cast<std::uint32_t>(label_betas.size()));
  }

  std::vector<std::uint8_t> meta;
  meta.reserve(kV3MetaBytes);
  put<std::uint32_t>(meta, config.min_gap);
  put<std::uint8_t>(meta, config.mean_of_ratios ? 1 : 0);
  put<std::uint8_t>(meta, observation.sibling_aware ? 1 : 0);
  put<std::uint16_t>(meta, 0);  // reserved, must read back zero
  put_double(meta, config.ratio_threshold);
  put<std::uint64_t>(meta, state.entries_ingested);
  put<std::uint64_t>(meta, state.decode_records_ok);
  put<std::uint64_t>(meta, state.decode_records_skipped);

  std::vector<std::uint8_t> out;
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(SnapshotFormat::kV3));
  put<std::uint32_t>(out, 0);  // flags, reserved

  struct Entry {
    std::uint32_t kind = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint64_t checksum = 0;
  };
  std::vector<Entry> entries;
  entries.reserve(kV3SegmentCount);
  const auto append_segment = [&](V3Kind kind, const void* data,
                                  std::size_t byte_size) {
    while (out.size() % kV3Align != 0) out.push_back(0);
    const auto* p = static_cast<const std::uint8_t*>(data);
    entries.push_back(Entry{kind, out.size(), byte_size,
                            checksum64({p, byte_size})});
    if (byte_size != 0) out.insert(out.end(), p, p + byte_size);
  };
  const auto append_column = [&](V3Kind kind, const auto& column) {
    append_segment(kind, column.data(),
                   column.size() * sizeof(*column.data()));
  };

  append_segment(kSegMeta, meta.data(), meta.size());
  append_column(kSegAsnsOnPaths, state.asns_on_paths);
  append_column(kSegDirtyAlphas, state.dirty);
  append_column(kSegAlphaIds, alpha_ids);
  append_column(kSegAlphaBetaBegin, alpha_beta_begin);
  append_column(kSegAlphaLabelBegin, alpha_label_begin);
  append_column(kSegBetaIds, beta_ids);
  append_column(kSegBetaOnBegin, beta_on_begin);
  append_column(kSegBetaOffBegin, beta_off_begin);
  append_column(kSegOnPathHashes, on_hashes);
  append_column(kSegOffPathHashes, off_hashes);
  append_column(kSegLabelBetas, label_betas);
  append_column(kSegLabelIntents, label_intents);
  append_column(kSegServeWires, serve_wires);
  append_column(kSegServeIntents, serve_intents);
  append_column(kSegPathAsnArena, paths.asn_arena);
  append_column(kSegPathUniqArena, paths.uniq_arena);
  append_column(kSegPathSegTypes, paths.seg_types);
  append_column(kSegPathSegCounts, paths.seg_counts);
  append_column(kSegPathAsnBegin, paths.asn_begin);
  append_column(kSegPathAsnCount, paths.asn_count);
  append_column(kSegPathSegBegin, paths.seg_begin);
  append_column(kSegPathSegCount, paths.seg_count);
  append_column(kSegPathUniqBegin, paths.uniq_begin);
  append_column(kSegPathUniqCount, paths.uniq_count);
  append_column(kSegPathHashes, paths.hashes);

  while (out.size() % 8 != 0) out.push_back(0);
  const std::uint64_t table_offset = out.size();
  std::vector<std::uint8_t> table;
  table.reserve(kV3SegmentCount * kV3EntryBytes);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    put<std::uint32_t>(table, entries[i].kind);
    put<std::uint32_t>(table,
                       static_cast<std::uint32_t>(kV3Kinds[i].width));
    put<std::uint64_t>(table, entries[i].offset);
    put<std::uint64_t>(table, entries[i].size);
    put<std::uint64_t>(table, entries[i].checksum);
  }
  out.insert(out.end(), table.begin(), table.end());

  put<std::uint64_t>(out, table_offset);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(kV3SegmentCount));
  put<std::uint32_t>(out, kV3FooterMagic);
  put<std::uint64_t>(out, checksum64(table));
  put<std::uint64_t>(out, out.size() + 8);  // total size incl. this field
  return out;
}

/// One parsed segment: its table entry plus the mapped byte range.
struct V3Segment {
  std::span<const std::uint8_t> bytes;
  std::size_t count = 0;  ///< element count (bytes / width)
};

struct ParsedV3 {
  core::ClassifierConfig config;
  core::ObservationConfig observation;
  core::StateColumns columns;
  std::array<V3Segment, kV3SegmentCount> segments;
  std::size_t table_offset = 0;
};

template <typename T>
[[nodiscard]] std::span<const T> typed(const V3Segment& segment) noexcept {
  return {reinterpret_cast<const T*>(segment.bytes.data()), segment.count};
}

/// Validates a begin-offsets column: begin[0] == 0, non-decreasing, and
/// ending exactly at `total` (the element count of the column it indexes).
template <typename T>
void check_begin_column(std::span<const T> begin, std::size_t total,
                        std::size_t kind_index) {
  if (begin.empty() || begin.front() != 0)
    throw region_error(kind_index, "does not start at zero");
  for (std::size_t i = 1; i < begin.size(); ++i)
    if (begin[i] < begin[i - 1])
      throw region_error(kind_index, "offsets decrease");
  if (static_cast<std::size_t>(begin.back()) != total)
    throw region_error(kind_index, "does not cover its target column");
}

template <typename T>
void check_sorted_unique(std::span<const T> ids, std::size_t kind_index) {
  for (std::size_t i = 1; i < ids.size(); ++i)
    if (ids[i] <= ids[i - 1])
      throw region_error(kind_index, "ids are not sorted");
}

void check_intent_bytes(std::span<const std::uint8_t> bytes,
                        std::size_t kind_index) {
  for (const std::uint8_t raw : bytes)
    if (raw > static_cast<std::uint8_t>(core::Intent::kUnclassified))
      throw region_error(kind_index, "holds an invalid intent byte");
}

/// Full parse + validation of a v3 image (magic and version already
/// checked by the caller).  The returned columns alias `bytes`.
[[nodiscard]] ParsedV3 parse_v3(std::span<const std::uint8_t> bytes,
                                bool verify_segment_checksums) {
  if (bytes.size() <
      kV3HeaderBytes + kV3SegmentCount * kV3EntryBytes + kV3FooterBytes)
    throw SnapshotError(util::format(
        "snapshot v3 image truncated (%zu bytes)", bytes.size()));
  {
    Cursor flags_cursor(bytes.subspan(12, 4));
    const std::uint32_t flags = flags_cursor.get<std::uint32_t>();
    if (flags != 0)
      throw SnapshotError(
          util::format("snapshot v3 header has unsupported flags 0x%x",
                       flags));
  }

  Cursor footer(bytes.subspan(bytes.size() - kV3FooterBytes));
  const std::uint64_t table_offset = footer.get<std::uint64_t>();
  const std::uint32_t seg_count = footer.get<std::uint32_t>();
  const std::uint32_t footer_magic = footer.get<std::uint32_t>();
  const std::uint64_t table_checksum = footer.get<std::uint64_t>();
  const std::uint64_t total_size = footer.get<std::uint64_t>();
  if (footer_magic != kV3FooterMagic)
    throw SnapshotError("snapshot v3 footer magic mismatch");
  if (total_size != bytes.size())
    throw SnapshotError(util::format(
        "snapshot v3 footer promises %llu bytes but the image has %zu "
        "(truncated or trailing bytes)",
        static_cast<unsigned long long>(total_size), bytes.size()));
  if (seg_count != kV3SegmentCount)
    throw SnapshotError(util::format(
        "snapshot v3 footer declares %u segments, expected %zu", seg_count,
        kV3SegmentCount));
  if (table_offset < kV3HeaderBytes ||
      table_offset + kV3SegmentCount * kV3EntryBytes !=
          bytes.size() - kV3FooterBytes)
    throw SnapshotError("snapshot v3 segment table offset out of place");
  const auto table_bytes = bytes.subspan(
      static_cast<std::size_t>(table_offset), kV3SegmentCount * kV3EntryBytes);
  if (checksum64(table_bytes) != table_checksum)
    throw SnapshotError("snapshot v3 segment table checksum mismatch");

  ParsedV3 parsed;
  parsed.table_offset = static_cast<std::size_t>(table_offset);
  Cursor table(table_bytes);
  std::size_t previous_end = kV3HeaderBytes;
  for (std::size_t i = 0; i < kV3SegmentCount; ++i) {
    const std::uint32_t kind = table.get<std::uint32_t>();
    const std::uint32_t width = table.get<std::uint32_t>();
    const std::uint64_t offset = table.get<std::uint64_t>();
    const std::uint64_t size = table.get<std::uint64_t>();
    const std::uint64_t checksum = table.get<std::uint64_t>();
    if (kind != i + 1)
      throw region_error(i, "has an unexpected kind in the segment table");
    if (width != kV3Kinds[i].width)
      throw region_error(i, "has an unexpected element width");
    if (offset % kV3Align != 0)
      throw region_error(i, "is not 64-byte aligned");
    if (offset < previous_end || offset > table_offset ||
        size > table_offset - offset)
      throw region_error(i, "overlaps a neighbouring region");
    if (size % width != 0)
      throw region_error(i, "byte size is not a whole element count");
    // The gaps between regions are alignment padding; insisting they are
    // zero means no byte of the file escapes validation.
    for (std::size_t pad = previous_end; pad < offset; ++pad)
      if (bytes[pad] != 0)
        throw region_error(i, "has non-zero padding before it");
    const auto segment_bytes =
        bytes.subspan(static_cast<std::size_t>(offset),
                      static_cast<std::size_t>(size));
    if (verify_segment_checksums && checksum64(segment_bytes) != checksum)
      throw region_error(i, "checksum mismatch (corrupt file)");
    parsed.segments[i] =
        V3Segment{segment_bytes, static_cast<std::size_t>(size / width)};
    previous_end = static_cast<std::size_t>(offset + size);
  }
  for (std::size_t pad = previous_end; pad < table_offset; ++pad)
    if (bytes[pad] != 0)
      throw SnapshotError(
          "snapshot v3 has non-zero padding before the segment table");

  // Meta: fixed-size scalar block.
  const V3Segment& meta = parsed.segments[kSegMeta - 1];
  if (meta.count != 1)
    throw region_error(kSegMeta - 1, "must hold exactly one record");
  Cursor meta_cursor(meta.bytes);
  parsed.config.min_gap = meta_cursor.get<std::uint32_t>();
  parsed.config.mean_of_ratios = meta_cursor.get<std::uint8_t>() != 0;
  parsed.observation.sibling_aware = meta_cursor.get<std::uint8_t>() != 0;
  if (meta_cursor.get<std::uint16_t>() != 0)
    throw region_error(kSegMeta - 1, "has non-zero reserved bytes");
  parsed.config.ratio_threshold = meta_cursor.get_double();

  core::StateColumns& c = parsed.columns;
  c.entries_ingested = meta_cursor.get<std::uint64_t>();
  c.decode_records_ok = meta_cursor.get<std::uint64_t>();
  c.decode_records_skipped = meta_cursor.get<std::uint64_t>();

  c.asns_on_paths = typed<bgp::Asn>(parsed.segments[kSegAsnsOnPaths - 1]);
  c.dirty = typed<std::uint16_t>(parsed.segments[kSegDirtyAlphas - 1]);
  c.alpha_ids = typed<std::uint16_t>(parsed.segments[kSegAlphaIds - 1]);
  c.alpha_beta_begin =
      typed<std::uint32_t>(parsed.segments[kSegAlphaBetaBegin - 1]);
  c.alpha_label_begin =
      typed<std::uint32_t>(parsed.segments[kSegAlphaLabelBegin - 1]);
  c.beta_ids = typed<std::uint16_t>(parsed.segments[kSegBetaIds - 1]);
  c.beta_on_begin =
      typed<std::uint64_t>(parsed.segments[kSegBetaOnBegin - 1]);
  c.beta_off_begin =
      typed<std::uint64_t>(parsed.segments[kSegBetaOffBegin - 1]);
  c.on_path_hashes =
      typed<std::uint64_t>(parsed.segments[kSegOnPathHashes - 1]);
  c.off_path_hashes =
      typed<std::uint64_t>(parsed.segments[kSegOffPathHashes - 1]);
  c.label_betas = typed<std::uint16_t>(parsed.segments[kSegLabelBetas - 1]);
  c.label_intents =
      typed<core::Intent>(parsed.segments[kSegLabelIntents - 1]);
  c.serve_wires = typed<std::uint32_t>(parsed.segments[kSegServeWires - 1]);
  c.serve_intents =
      typed<core::Intent>(parsed.segments[kSegServeIntents - 1]);
  c.paths.asn_arena = typed<bgp::Asn>(parsed.segments[kSegPathAsnArena - 1]);
  c.paths.uniq_arena =
      typed<bgp::Asn>(parsed.segments[kSegPathUniqArena - 1]);
  c.paths.seg_types =
      typed<std::uint8_t>(parsed.segments[kSegPathSegTypes - 1]);
  c.paths.seg_counts =
      typed<std::uint32_t>(parsed.segments[kSegPathSegCounts - 1]);
  c.paths.asn_begin =
      typed<std::uint32_t>(parsed.segments[kSegPathAsnBegin - 1]);
  c.paths.asn_count =
      typed<std::uint32_t>(parsed.segments[kSegPathAsnCount - 1]);
  c.paths.seg_begin =
      typed<std::uint32_t>(parsed.segments[kSegPathSegBegin - 1]);
  c.paths.seg_count =
      typed<std::uint32_t>(parsed.segments[kSegPathSegCount - 1]);
  c.paths.uniq_begin =
      typed<std::uint32_t>(parsed.segments[kSegPathUniqBegin - 1]);
  c.paths.uniq_count =
      typed<std::uint32_t>(parsed.segments[kSegPathUniqCount - 1]);
  c.paths.hashes = typed<std::uint64_t>(parsed.segments[kSegPathHashes - 1]);

  // Cross-column shape validation.  Everything the serve fast path and
  // the borrowed classifier index into without bounds checks is proven
  // consistent here, once, so a structurally corrupt file that slipped
  // past the checksums (or was opened with them off) still cannot cause
  // out-of-bounds reads — only the sortedness of the hash columns is
  // taken on faith from the writer (the checksums cover it).
  const std::size_t n_alpha = c.alpha_ids.size();
  const std::size_t n_beta = c.beta_ids.size();
  if (c.alpha_beta_begin.size() != n_alpha + 1)
    throw region_error(kSegAlphaBetaBegin - 1, "length mismatch");
  if (c.alpha_label_begin.size() != n_alpha + 1)
    throw region_error(kSegAlphaLabelBegin - 1, "length mismatch");
  if (c.beta_on_begin.size() != n_beta + 1)
    throw region_error(kSegBetaOnBegin - 1, "length mismatch");
  if (c.beta_off_begin.size() != n_beta + 1)
    throw region_error(kSegBetaOffBegin - 1, "length mismatch");
  if (c.label_intents.size() != c.label_betas.size())
    throw region_error(kSegLabelIntents - 1, "length mismatch");
  if (c.serve_wires.size() != n_beta)
    throw region_error(kSegServeWires - 1, "length mismatch");
  if (c.serve_intents.size() != n_beta)
    throw region_error(kSegServeIntents - 1, "length mismatch");
  check_begin_column(c.alpha_beta_begin, n_beta, kSegAlphaBetaBegin - 1);
  check_begin_column(c.alpha_label_begin, c.label_betas.size(),
                     kSegAlphaLabelBegin - 1);
  check_begin_column(c.beta_on_begin, c.on_path_hashes.size(),
                     kSegBetaOnBegin - 1);
  check_begin_column(c.beta_off_begin, c.off_path_hashes.size(),
                     kSegBetaOffBegin - 1);
  check_sorted_unique(c.asns_on_paths, kSegAsnsOnPaths - 1);
  check_sorted_unique(c.dirty, kSegDirtyAlphas - 1);
  check_sorted_unique(c.alpha_ids, kSegAlphaIds - 1);
  for (std::size_t a = 0; a < n_alpha; ++a) {
    check_sorted_unique(
        c.beta_ids.subspan(c.alpha_beta_begin[a],
                           c.alpha_beta_begin[a + 1] - c.alpha_beta_begin[a]),
        kSegBetaIds - 1);
    check_sorted_unique(
        c.label_betas.subspan(
            c.alpha_label_begin[a],
            c.alpha_label_begin[a + 1] - c.alpha_label_begin[a]),
        kSegLabelBetas - 1);
  }
  check_intent_bytes(parsed.segments[kSegLabelIntents - 1].bytes,
                     kSegLabelIntents - 1);
  check_intent_bytes(parsed.segments[kSegServeIntents - 1].bytes,
                     kSegServeIntents - 1);
  {
    std::size_t slot = 0;
    for (std::size_t a = 0; a < n_alpha; ++a)
      for (std::uint32_t b = c.alpha_beta_begin[a];
           b < c.alpha_beta_begin[a + 1]; ++b, ++slot)
        if (c.serve_wires[slot] !=
            (static_cast<std::uint32_t>(c.alpha_ids[a]) << 16 |
             c.beta_ids[slot]))
          throw region_error(kSegServeWires - 1,
                             "disagrees with the alpha/beta columns");
  }

  const std::size_t n_path = c.paths.hashes.size();
  if (c.paths.asn_begin.size() != n_path ||
      c.paths.asn_count.size() != n_path ||
      c.paths.seg_begin.size() != n_path ||
      c.paths.seg_count.size() != n_path ||
      c.paths.uniq_begin.size() != n_path ||
      c.paths.uniq_count.size() != n_path)
    throw region_error(kSegPathHashes - 1,
                       "disagrees with the per-path columns");
  if (c.paths.seg_types.size() != c.paths.seg_counts.size())
    throw region_error(kSegPathSegTypes - 1, "length mismatch");
  for (std::size_t p = 0; p < n_path; ++p) {
    if (std::uint64_t{c.paths.asn_begin[p]} + c.paths.asn_count[p] >
            c.paths.asn_arena.size() ||
        std::uint64_t{c.paths.seg_begin[p]} + c.paths.seg_count[p] >
            c.paths.seg_types.size() ||
        std::uint64_t{c.paths.uniq_begin[p]} + c.paths.uniq_count[p] >
            c.paths.uniq_arena.size())
      throw region_error(kSegPathAsnBegin - 1, "spans outside its arena");
  }

  return parsed;
}

/// Shared front matter: checks the magic, reads the version, and applies
/// the version-switch policy.  Returns the version on success (2 or 3).
[[nodiscard]] std::uint32_t check_header(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 12)
    throw SnapshotError(
        util::format("snapshot header truncated (%zu of %zu bytes)",
                     bytes.size(), kHeaderBytes));
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw SnapshotError("not a bgpintent snapshot (bad magic)");
  Cursor version_cursor(bytes.subspan(sizeof kMagic, 4));
  const std::uint32_t version = version_cursor.get<std::uint32_t>();
  if (version > kSnapshotVersion)
    throw SnapshotError(util::format(
        "snapshot format version %u is newer than supported version %u",
        version, kSnapshotVersion));
  if (version < kSnapshotVersionMin)
    throw SnapshotError(util::format(
        "snapshot format version %u is no longer supported (this build "
        "reads versions %u through %u; re-ingest the source data to "
        "produce a fresh snapshot)",
        version, kSnapshotVersionMin, kSnapshotVersion));
  return version;
}

[[nodiscard]] core::IncrementalClassifier decode_snapshot_v3(
    std::span<const std::uint8_t> bytes) {
  const ParsedV3 parsed = parse_v3(bytes, /*verify_segment_checksums=*/true);
  // Heap decode: materialize owned state + the interned-path table from a
  // throwaway view over the caller's bytes.
  const core::StateView view(parsed.columns, nullptr);
  bgp::PathTable paths;
  try {
    paths = view.materialize_paths();
  } catch (const std::invalid_argument& error) {
    throw SnapshotError(
        util::format("snapshot v3 path columns are inconsistent: %s",
                     error.what()));
  }
  core::IncrementalClassifier classifier(parsed.config, parsed.observation);
  classifier.restore_state(view.materialize(), std::move(paths));
  return classifier;
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(
    const core::IncrementalClassifier& classifier, SnapshotFormat format) {
  return format == SnapshotFormat::kV3 ? encode_snapshot_v3(classifier)
                                       : encode_snapshot_v2(classifier);
}

core::IncrementalClassifier decode_snapshot(
    std::span<const std::uint8_t> bytes) {
  const std::uint32_t version = check_header(bytes);
  if (version == static_cast<std::uint32_t>(SnapshotFormat::kV3))
    return decode_snapshot_v3(bytes);

  if (bytes.size() < kHeaderBytes)
    throw SnapshotError(
        util::format("snapshot header truncated (%zu of %zu bytes)",
                     bytes.size(), kHeaderBytes));
  Cursor header(bytes.subspan(12, kHeaderBytes - 12));
  const std::uint64_t checksum = header.get<std::uint64_t>();
  const std::uint64_t payload_size = header.get<std::uint64_t>();

  const auto payload = bytes.subspan(kHeaderBytes);
  if (payload.size() != payload_size)
    throw SnapshotError(util::format(
        "snapshot payload is %zu bytes but the header promises %llu",
        payload.size(), static_cast<unsigned long long>(payload_size)));
  if (fnv1a64(payload) != checksum)
    throw SnapshotError("snapshot checksum mismatch (corrupt file)");

  Cursor cursor(payload);
  return decode_payload(cursor);
}

void save_snapshot(const core::IncrementalClassifier& classifier,
                   std::ostream& out, SnapshotFormat format) {
  const auto bytes = encode_snapshot(classifier, format);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw SnapshotError("failed to write snapshot stream");
}

core::IncrementalClassifier load_snapshot(std::istream& in) {
  std::vector<std::uint8_t> bytes;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0)
    bytes.insert(bytes.end(), buffer, buffer + in.gcount());
  if (in.bad()) throw SnapshotError("failed to read snapshot stream");
  return decode_snapshot(bytes);
}

void save_snapshot(const core::IncrementalClassifier& classifier,
                   const std::string& path, SnapshotFormat format) {
  write_snapshot_bytes(encode_snapshot(classifier, format), path);
}

void write_snapshot_bytes(std::span<const std::uint8_t> bytes,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw SnapshotError(
          util::format("cannot open %s for writing", tmp.c_str()));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::remove(tmp.c_str());
      throw SnapshotError(util::format("failed to write %s", tmp.c_str()));
    }
  }
  // Durability contract (mirrors stream/checkpoint.cpp): the tmp file's
  // bytes must be on stable storage *before* the rename makes them the
  // snapshot, and the rename itself must be journaled by fsyncing the
  // parent directory *after* — otherwise a power cut can leave the path
  // pointing at a file whose content (or whose directory entry) never hit
  // the disk.
  {
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd < 0) {
      std::remove(tmp.c_str());
      throw SnapshotError(
          util::format("cannot reopen %s for fsync", tmp.c_str()));
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      std::remove(tmp.c_str());
      throw SnapshotError(util::format("fsync of %s failed", tmp.c_str()));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError(
        util::format("cannot rename %s to %s", tmp.c_str(), path.c_str()));
  }
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  const int dir_fd =
      ::open(parent.empty() ? "." : parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {  // best effort: some filesystems refuse dir fsync
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

core::IncrementalClassifier load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError(util::format("cannot open %s", path.c_str()));
  return load_snapshot(in);
}

std::shared_ptr<MappedSnapshot> MappedSnapshot::open(
    const std::string& path, MappedSnapshotOptions options) {
  std::unique_ptr<const mrt::ByteSource> source;
  try {
    source = mrt::open_source(path, /*allow_mmap=*/true);
  } catch (const mrt::MrtError& error) {
    throw SnapshotError(util::format("cannot map snapshot %s: %s",
                                     path.c_str(), error.what()));
  }
  const auto bytes = source->data();
  const std::uint32_t version = check_header(bytes);
  if (version != static_cast<std::uint32_t>(SnapshotFormat::kV3))
    throw SnapshotError(util::format(
        "snapshot %s is format version %u, which cannot be served from a "
        "mapping; re-save it as v3 (serve --snapshot-format v3) to use "
        "--snapshot-mmap",
        path.c_str(), version));
  ParsedV3 parsed = parse_v3(bytes, options.verify_segment_checksums);
  return std::make_shared<MappedSnapshot>(Private{}, std::move(source),
                                          parsed.config, parsed.observation,
                                          parsed.columns);
}

std::shared_ptr<const core::StateView> MappedSnapshot::state_view() const {
  return std::make_shared<core::StateView>(columns_, shared_from_this());
}

std::vector<SnapshotRegion> snapshot_v3_regions(
    std::span<const std::uint8_t> bytes) {
  const std::uint32_t version = check_header(bytes);
  if (version != static_cast<std::uint32_t>(SnapshotFormat::kV3))
    throw SnapshotError("snapshot_v3_regions needs a v3 image");
  const ParsedV3 parsed = parse_v3(bytes, /*verify_segment_checksums=*/true);
  std::vector<SnapshotRegion> regions;
  regions.reserve(kV3SegmentCount + 2);
  for (std::size_t i = 0; i < kV3SegmentCount; ++i) {
    const V3Segment& segment = parsed.segments[i];
    regions.push_back(SnapshotRegion{
        kV3Kinds[i].name,
        static_cast<std::size_t>(segment.bytes.data() - bytes.data()),
        segment.bytes.size()});
  }
  regions.push_back(SnapshotRegion{"segment_table", parsed.table_offset,
                                   kV3SegmentCount * kV3EntryBytes});
  regions.push_back(SnapshotRegion{
      "footer", bytes.size() - kV3FooterBytes, kV3FooterBytes});
  return regions;
}

}  // namespace bgpintent::serve
