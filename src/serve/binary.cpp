#include "serve/binary.hpp"

namespace bgpintent::serve::binary {

namespace {

/// Reserves the 4-byte length slot, returns its offset so finish_frame can
/// backpatch once the payload size is known.  Keeps encoding single-pass.
std::size_t begin_frame(std::string& out) {
  const std::size_t at = out.size();
  out.append(kLengthBytes, '\0');
  return at;
}

void finish_frame(std::string& out, std::size_t length_at) {
  const std::size_t payload = out.size() - length_at - kLengthBytes;
  for (int i = 0; i < 4; ++i)
    out[length_at + static_cast<std::size_t>(i)] =
        static_cast<char>((payload >> (8 * i)) & 0xff);
}

}  // namespace

void encode_hello(std::string& out, std::uint16_t version) {
  out.append(reinterpret_cast<const char*>(kMagic), sizeof kMagic);
  put_u16(out, version);
  put_u16(out, 0);
}

void encode_label_request(std::string& out, bgp::Community community) {
  const std::size_t at = begin_frame(out);
  out.push_back(static_cast<char>(Op::kLabel));
  put_u32(out, community.wire());
  finish_frame(out, at);
}

void encode_batch_label_request(std::string& out,
                                std::span<const bgp::Community> communities) {
  const std::size_t at = begin_frame(out);
  out.push_back(static_cast<char>(Op::kBatchLabel));
  put_u32(out, static_cast<std::uint32_t>(communities.size()));
  for (const auto& c : communities) put_u32(out, c.wire());
  finish_frame(out, at);
}

void encode_stats_request(std::string& out) {
  const std::size_t at = begin_frame(out);
  out.push_back(static_cast<char>(Op::kStats));
  finish_frame(out, at);
}

void encode_hello_ok(std::string& out, std::uint16_t version) {
  const std::size_t at = begin_frame(out);
  out.push_back(static_cast<char>(Status::kOk));
  out.push_back(static_cast<char>(Op::kHello));
  put_u16(out, version);
  finish_frame(out, at);
}

void encode_label_ok(std::string& out, dict::Intent intent) {
  const std::size_t at = begin_frame(out);
  out.push_back(static_cast<char>(Status::kOk));
  out.push_back(static_cast<char>(intent));
  finish_frame(out, at);
}

void encode_batch_label_ok(std::string& out,
                           std::span<const dict::Intent> intents) {
  const std::size_t at = begin_frame(out);
  out.push_back(static_cast<char>(Status::kOk));
  put_u32(out, static_cast<std::uint32_t>(intents.size()));
  for (const auto intent : intents)
    out.push_back(static_cast<char>(intent));
  finish_frame(out, at);
}

void encode_stats_ok(std::string& out, const StatsPayload& stats) {
  const std::size_t at = begin_frame(out);
  out.push_back(static_cast<char>(Status::kOk));
  put_u64(out, stats.connections);
  put_u64(out, stats.queries);
  put_u64(out, stats.batch_queries);
  put_u64(out, stats.entries);
  put_u64(out, stats.label_epochs);
  put_f64(out, stats.p50_us);
  put_f64(out, stats.p99_us);
  finish_frame(out, at);
}

void encode_err(std::string& out, ErrCode code, std::string_view message) {
  const std::size_t at = begin_frame(out);
  out.push_back(static_cast<char>(Status::kErr));
  put_u16(out, static_cast<std::uint16_t>(code));
  out.append(message);
  finish_frame(out, at);
}

ParseResult parse_frame(std::span<const unsigned char> buffer, Frame& frame) {
  if (buffer.size() < kLengthBytes) return ParseResult::kNeedMore;
  const std::uint32_t payload = get_u32(buffer.data());
  // Reject before waiting for the body: a lying length field must not make
  // the server sit on (or buffer) megabytes it will never use.
  if (payload > kMaxFramePayload) return ParseResult::kOversized;
  if (payload == 0) return ParseResult::kMalformed;
  if (buffer.size() < kLengthBytes + payload) return ParseResult::kNeedMore;
  frame.tag = buffer[kLengthBytes];
  frame.body = buffer.subspan(kLengthBytes + 1, payload - 1);
  frame.consumed = kLengthBytes + payload;
  return ParseResult::kFrame;
}

std::optional<WireError> parse_err_body(std::span<const unsigned char> body) {
  if (body.size() < 2) return std::nullopt;
  WireError err;
  err.code = static_cast<ErrCode>(get_u16(body.data()));
  err.message.assign(reinterpret_cast<const char*>(body.data()) + 2,
                     body.size() - 2);
  return err;
}

std::optional<StatsPayload> parse_stats_body(
    std::span<const unsigned char> body) {
  if (body.size() != kStatsPayloadBytes) return std::nullopt;
  StatsPayload s;
  const unsigned char* p = body.data();
  s.connections = get_u64(p);
  s.queries = get_u64(p + 8);
  s.batch_queries = get_u64(p + 16);
  s.entries = get_u64(p + 24);
  s.label_epochs = get_u64(p + 32);
  s.p50_us = get_f64(p + 40);
  s.p99_us = get_f64(p + 48);
  return s;
}

std::optional<dict::Intent> intent_from_wire(std::uint8_t code) noexcept {
  switch (code) {
    case static_cast<std::uint8_t>(dict::Intent::kAction):
      return dict::Intent::kAction;
    case static_cast<std::uint8_t>(dict::Intent::kInformation):
      return dict::Intent::kInformation;
    case static_cast<std::uint8_t>(dict::Intent::kUnclassified):
      return dict::Intent::kUnclassified;
    default:
      return std::nullopt;
  }
}

}  // namespace bgpintent::serve::binary
