#include "serve/protocol.hpp"

#include "util/strings.hpp"

namespace bgpintent::serve {

std::optional<std::string> format_path(const bgp::AsPath& path) {
  if (path.empty()) return std::nullopt;
  std::string out;
  for (const bgp::PathSegment& segment : path.segments()) {
    if (segment.type != bgp::SegmentType::kSequence) return std::nullopt;
    for (const bgp::Asn asn : segment.asns) {
      if (!out.empty()) out += ',';
      out += bgp::asn_to_string(asn);
    }
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::optional<bgp::AsPath> parse_path(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::vector<bgp::Asn> asns;
  for (const std::string_view field : util::split(text, ',')) {
    const auto asn = bgp::parse_asn(field);
    if (!asn) return std::nullopt;
    asns.push_back(*asn);
  }
  return bgp::AsPath(std::move(asns));
}

std::string format_communities(std::span<const bgp::Community> communities) {
  if (communities.empty()) return "-";
  std::string out;
  for (const bgp::Community community : communities) {
    if (!out.empty()) out += ',';
    out += community.to_string();
  }
  return out;
}

std::optional<std::vector<bgp::Community>> parse_communities(
    std::string_view text) {
  std::vector<bgp::Community> communities;
  if (text == "-") return communities;
  if (text.empty()) return std::nullopt;
  for (const std::string_view field : util::split(text, ',')) {
    const auto community = bgp::Community::parse(field);
    if (!community) return std::nullopt;
    communities.push_back(*community);
  }
  return communities;
}

std::optional<std::map<std::string, std::string>> parse_ok_response(
    std::string_view line) {
  const auto fields = util::split_whitespace(line);
  if (fields.empty() || fields.front() != "OK") return std::nullopt;
  std::map<std::string, std::string> pairs;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string_view field = fields[i];
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) continue;
    pairs.emplace(std::string(field.substr(0, eq)),
                  std::string(field.substr(eq + 1)));
  }
  return pairs;
}

}  // namespace bgpintent::serve
